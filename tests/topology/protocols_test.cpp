// Hand-built protocol scenarios, including the paper's Fig. 2 triangle.
#include <gtest/gtest.h>

#include <numbers>

#include "geom/predicates.hpp"
#include "topology/builder.hpp"
#include "topology/protocol.hpp"

namespace mstc::topology {
namespace {

using geom::Vec2;

constexpr double kNormalRange = 250.0;

ViewGraph view_of(const std::vector<Vec2>& positions, std::size_t owner,
                  const CostModel& cost, double range = kNormalRange) {
  std::vector<NodeId> ids(positions.size());
  for (NodeId i = 0; i < ids.size(); ++i) ids[i] = i;
  return make_consistent_view(positions, ids, owner, range, cost);
}

std::vector<NodeId> logical_ids(const Protocol& protocol,
                                const ViewGraph& view) {
  std::vector<NodeId> out;
  for (std::size_t index : protocol.select(view)) out.push_back(view.id(index));
  std::sort(out.begin(), out.end());
  return out;
}

// The paper's Fig. 2 triangle at time t0: d(u,v) = 5, d(u,w) = 6,
// d(v,w) = 4 (u = node 0, v = node 1, w = node 2).
std::vector<Vec2> fig2_triangle() {
  // w solves x^2+y^2 = 36 and (x-5)^2+y^2 = 16 -> x = 4.5, y = sqrt(15.75).
  return {{0.0, 0.0}, {5.0, 0.0}, {4.5, std::sqrt(15.75)}};
}

TEST(RngProtocolTest, RemovesLongestEdgeOfTriangle) {
  const DistanceCost cost;
  const RngProtocol protocol;
  const auto positions = fig2_triangle();
  // u's longest adjacent link is (u,w)=6 with witness v: removed.
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1}));
  // v keeps both: (v,u)=5 has witness w with d(w,v)=4 but d(u,w)=6 > 5.
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 1, cost)),
            (std::vector<NodeId>{0, 2}));
  // w keeps v, drops u (witness v: 4 < 6 and 5 < 6).
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 2, cost)),
            (std::vector<NodeId>{1}));
}

TEST(LmstProtocolTest, KeepsLocalMstEdges) {
  const DistanceCost cost;
  const LmstProtocol protocol;
  const auto positions = fig2_triangle();
  // Local MST of the triangle keeps edges (v,w)=4 and (u,v)=5.
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1}));
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 1, cost)),
            (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 2, cost)),
            (std::vector<NodeId>{1}));
}

TEST(LmstProtocolTest, MultiHopRemoval) {
  // Chain 0-1-2 nearly collinear plus a long direct link 0-2: MST removes
  // (0,2) because the 2-hop path has max cost below the direct cost, while
  // RNG keeps it when no single witness beats it... here witness 1 does.
  const std::vector<Vec2> positions = {{0, 0}, {10, 1}, {20, 0}};
  const DistanceCost cost;
  const LmstProtocol mst;
  EXPECT_EQ(logical_ids(mst, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1}));
}

TEST(LmstProtocolTest, FourNodePathRemoval) {
  // 0-1-2-3 chain with direct (0,3) link: condition 3 uses the full path,
  // so (0,3) is removed even though no single node is a witness for RNG.
  const std::vector<Vec2> positions = {
      {0, 0}, {60, 40}, {120, -40}, {180, 0}};
  const DistanceCost cost;
  const LmstProtocol mst;
  const auto kept = logical_ids(mst, view_of(positions, 0, cost));
  EXPECT_EQ(kept, (std::vector<NodeId>{1}));
}

TEST(SptProtocolTest, Alpha2RemovesWhenDetourCheaper) {
  // Energy alpha=2: direct 0->2 costs 400; detour via 1 costs 2*10^2+... :
  // positions 0,(10,0),(20,0): detour 100+100=200 < 400 -> removed.
  const EnergyCost cost(2.0);
  const SptProtocol protocol("SPT-2");
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}, {20, 0}};
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1}));
}

TEST(SptProtocolTest, KeepsLinkWhenDetourIsDearer) {
  // Distance cost: detour cost is a sum of distances which always exceeds
  // the direct distance (triangle inequality), so nothing is removed.
  const DistanceCost cost;
  const SptProtocol protocol("SPT-1");
  const auto positions = fig2_triangle();
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1, 2}));
}

TEST(SptProtocolTest, Alpha4RemovesMoreThanAlpha2Keeps) {
  // A detour that barely loses under alpha=2 wins under alpha=4.
  // direct = 20; detour legs 11 and 11: alpha2: 242 > 400? no, 242 < 400
  // -> removed under both. Use legs 15,15: alpha2: 450 > 400 keep;
  // alpha4: 2*50625=101250 < 160000 remove.
  const std::vector<Vec2> positions = {{0, 0}, {10.0, std::sqrt(125.0)},
                                       {20, 0}};
  ASSERT_NEAR(geom::distance(positions[0], positions[1]), 15.0, 1e-9);
  ASSERT_NEAR(geom::distance(positions[1], positions[2]), 15.0, 1e-9);
  const EnergyCost cost2(2.0);
  const EnergyCost cost4(4.0);
  const SptProtocol protocol2("SPT-2");
  const SptProtocol protocol4("SPT-4");
  EXPECT_EQ(logical_ids(protocol2, view_of(positions, 0, cost2)),
            (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(logical_ids(protocol4, view_of(positions, 0, cost4)),
            (std::vector<NodeId>{1}));
}

TEST(GabrielProtocolTest, DiskWitnessRemoves) {
  // Witness at the midpoint of (0, 2): inside the Gabriel disk.
  const std::vector<Vec2> positions = {{0, 0}, {10, 0.5}, {20, 0}};
  const DistanceCost cost;
  const GabrielProtocol protocol;
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1}));
}

TEST(GabrielProtocolTest, LuneWitnessOutsideDiskKeeps) {
  // Witness in the RNG lune but outside the Gabriel disk: RNG removes,
  // Gabriel keeps.
  const std::vector<Vec2> positions = {{0, 0}, {5.0, 5.5}, {10, 0}};
  const Vec2 u = positions[0], w = positions[1], v = positions[2];
  ASSERT_TRUE(geom::in_rng_lune(u, v, w));
  ASSERT_FALSE(geom::in_gabriel_disk(u, v, w));
  const DistanceCost cost;
  const GabrielProtocol gabriel;
  const RngProtocol rng;
  EXPECT_EQ(logical_ids(gabriel, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(logical_ids(rng, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1}));
}

TEST(YaoProtocolTest, KeepsNearestPerSector) {
  // Two neighbors in the same sector (east), one in another (north):
  // Yao keeps the nearer eastern one and the northern one.
  const std::vector<Vec2> positions = {{0, 0}, {10, 1}, {20, 2}, {1, 15}};
  const DistanceCost cost;
  const YaoProtocol protocol(6);
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1, 3}));
}

TEST(YaoProtocolTest, AtMostOnePerSectorOnPointViews) {
  const DistanceCost cost;
  const YaoProtocol protocol(6);
  std::vector<Vec2> positions = {{0, 0}};
  for (int i = 0; i < 20; ++i) {
    const double angle = 0.31 * i;
    const double radius = 10.0 + 3.0 * i;
    positions.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  const auto kept = protocol.select(view_of(positions, 0, cost, 1000.0));
  EXPECT_LE(kept.size(), 6u);
}

TEST(CbtcProtocolTest, StopsWhenConesCovered) {
  // Neighbors at 60-degree spacing, distances increasing with the index:
  // growth adds them nearest-first and stops once the max gap drops to
  // 2*pi/3, which happens after the fifth direction.
  const DistanceCost cost;
  const CbtcProtocol protocol(2.0 * std::numbers::pi / 3.0);
  std::vector<Vec2> positions = {{0, 0}};
  for (int i = 0; i < 6; ++i) {
    const double angle = i * 70.0 * std::numbers::pi / 180.0;
    const double radius = 50.0 + i;  // strictly increasing: growth order
    positions.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  // After the first five directions (0..280 degrees) the max gap is 80
  // degrees < 120, so growth stops before the sixth neighbor.
  const auto kept = protocol.select(view_of(positions, 0, cost));
  EXPECT_EQ(kept.size(), 5u);
}

TEST(CbtcProtocolTest, BoundaryNodeKeepsAllNeighbors) {
  // All neighbors east of the owner: the western cone can never be covered,
  // so CBTC keeps every neighbor (the paper's boundary-node behavior).
  const DistanceCost cost;
  const CbtcProtocol protocol(5.0 * std::numbers::pi / 6.0);
  const std::vector<Vec2> positions = {{0, 0}, {10, 1}, {20, -2}, {30, 3}};
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1, 2, 3}));
}

TEST(KNeighProtocolTest, KeepsKNearest) {
  const DistanceCost cost;
  const KNeighProtocol protocol(2);
  const std::vector<Vec2> positions = {{0, 0}, {30, 0}, {10, 0}, {20, 0}};
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{2, 3}));
}

TEST(KNeighProtocolTest, FewerNeighborsThanK) {
  const DistanceCost cost;
  const KNeighProtocol protocol(5);
  const std::vector<Vec2> positions = {{0, 0}, {30, 0}};
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1}));
}

TEST(NoneProtocolTest, KeepsEveryNeighbor) {
  const DistanceCost cost;
  const NoneProtocol protocol;
  const auto positions = fig2_triangle();
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1, 2}));
}

TEST(ProtocolFactory, PaperLineup) {
  const auto display_name = [](const std::string& name) -> std::string {
    if (name == "Yao") return "Yao-6";
    if (name == "KNeigh") return "KNeigh-9";
    if (name == "Yao2") return "Yao-6x2";
    if (name == "Yao3") return "Yao-6x3";
    if (name == "CBTC2" || name == "CBTC3") return "CBTC";
    return name;
  };
  for (const auto& name : protocol_names()) {
    const ProtocolSuite suite = make_protocol(name);
    ASSERT_NE(suite.protocol, nullptr) << name;
    ASSERT_NE(suite.cost, nullptr) << name;
    EXPECT_EQ(suite.protocol->name(), display_name(name)) << name;
  }
}

TEST(SearchRegionSptTest, RemovesFarNeighborWithCheapRelay) {
  // Chain geometry: the far neighbor (20 away) is relayed via the near
  // one (two 10-hops cost 200 < 400 under alpha = 2), so it is outside the
  // final search region AND removed.
  const EnergyCost cost(2.0);
  const SearchRegionSptProtocol protocol("SPT-R");
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}, {20, 0}};
  EXPECT_EQ(logical_ids(protocol, view_of(positions, 0, cost)),
            (std::vector<NodeId>{1}));
}

TEST(SearchRegionSptTest, GrowsToFullViewWhenNoRelayExists) {
  // Two neighbors on opposite sides: no relay possible, the region must
  // grow to cover both and both are kept — identical to full SPT.
  const EnergyCost cost(2.0);
  const SearchRegionSptProtocol region_protocol("SPT-R");
  const SptProtocol full_protocol("SPT-2");
  const std::vector<Vec2> positions = {{0, 0}, {-100, 0}, {100, 5}};
  const auto view = view_of(positions, 0, cost);
  EXPECT_EQ(logical_ids(region_protocol, view),
            logical_ids(full_protocol, view));
}

TEST(SearchRegionSptTest, EmptyViewSelectsNothing) {
  const EnergyCost cost(2.0);
  const SearchRegionSptProtocol protocol("SPT-R");
  const std::vector<Vec2> positions = {{0, 0}};
  EXPECT_TRUE(protocol.select(view_of(positions, 0, cost)).empty());
}

TEST(ProtocolFactory, UnknownNameThrows) {
  EXPECT_THROW(make_protocol("bogus"), std::invalid_argument);
}

TEST(ProtocolFactory, CostModelsMatchPaper) {
  EXPECT_EQ(make_protocol("MST").cost->name(), "distance");
  EXPECT_EQ(make_protocol("SPT-2").cost->name(), "energy(alpha=2)");
  EXPECT_EQ(make_protocol("SPT-4").cost->name(), "energy(alpha=4)");
}

}  // namespace
}  // namespace mstc::topology
