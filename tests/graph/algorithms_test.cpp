#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/union_find.hpp"
#include "util/prng.hpp"

namespace mstc::graph {
namespace {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1, 1.0);
  return g;
}

TEST(UnionFindTest, BasicUnions) {
  UnionFind uf(5);
  EXPECT_EQ(uf.component_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already joined
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.component_size(1), 3u);
  EXPECT_EQ(uf.component_size(4), 1u);
}

TEST(ConnectedComponents, LabelsMatchStructure) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto label = connected_components(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_NE(label[5], label[0]);
  EXPECT_NE(label[5], label[3]);
}

TEST(IsConnected, SmallCases) {
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_FALSE(is_connected(Graph(2)));
  EXPECT_TRUE(is_connected(path_graph(10)));
}

TEST(PairConnectivityRatio, ConnectedIsOne) {
  EXPECT_DOUBLE_EQ(pair_connectivity_ratio(path_graph(10)), 1.0);
}

TEST(PairConnectivityRatio, IsolatedNodesReduceRatio) {
  // Component sizes 3 and 2 among n=5: (3*2 + 2*1) / (5*4) = 8/20.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_DOUBLE_EQ(pair_connectivity_ratio(g), 0.4);
}

TEST(PairConnectivityRatio, FullyDisconnectedIsZero) {
  EXPECT_DOUBLE_EQ(pair_connectivity_ratio(Graph(4)), 0.0);
}

TEST(PairConnectivityRatio, TrivialGraphsAreOne) {
  EXPECT_DOUBLE_EQ(pair_connectivity_ratio(Graph(0)), 1.0);
  EXPECT_DOUBLE_EQ(pair_connectivity_ratio(Graph(1)), 1.0);
}

TEST(ReachableFrom, ReturnsComponentOfSource) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  auto reach = reachable_from(g, 0);
  std::sort(reach.begin(), reach.end());
  EXPECT_EQ(reach, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(reachable_from(g, 3).size(), 2u);
}

TEST(PrimMst, MatchesKruskalWeightOnRandomGraphs) {
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_below(30);
    Graph g(n);
    std::vector<EdgeRecord> edges;
    // Random connected-ish graph: a random spanning path + extra edges.
    for (NodeId u = 0; u + 1 < n; ++u) {
      const double w = rng.uniform(0.1, 10.0);
      g.add_edge(u, u + 1, w);
      edges.push_back({u, u + 1, w});
    }
    for (std::size_t extra = 0; extra < n; ++extra) {
      const NodeId u = rng.uniform_below(n);
      const NodeId v = rng.uniform_below(n);
      if (u == v) continue;
      const double w = rng.uniform(0.1, 10.0);
      g.add_edge(u, v, w);
      edges.push_back({std::min(u, v), std::max(u, v), w});
    }
    const auto parents = prim_mst_parents(g);
    double prim_weight = 0.0;
    std::size_t prim_edges = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (parents[u] == u) continue;
      ++prim_edges;
      // Find the minimum weight among parallel edges (u, parent).
      double best = kUnreachable;
      for (const Edge& e : g.neighbors(u)) {
        if (e.to == parents[u]) best = std::min(best, e.weight);
      }
      prim_weight += best;
    }
    const auto kruskal = kruskal_mst(n, edges);
    double kruskal_weight = 0.0;
    for (const auto& e : kruskal) kruskal_weight += e.weight;
    EXPECT_EQ(prim_edges, kruskal.size());
    EXPECT_NEAR(prim_weight, kruskal_weight, 1e-9);
  }
}

TEST(PrimMst, ForestOnDisconnectedInput) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto parents = prim_mst_parents(g);
  int roots = 0;
  for (NodeId u = 0; u < 4; ++u) roots += (parents[u] == u);
  EXPECT_EQ(roots, 2);
}

TEST(KruskalMst, SpanningTreeOfTriangle) {
  const auto tree = kruskal_mst(3, {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}});
  ASSERT_EQ(tree.size(), 2u);
  EXPECT_DOUBLE_EQ(tree[0].weight + tree[1].weight, 3.0);
}

TEST(KruskalMst, DeterministicTieBreaking) {
  // All weights equal: ties broken by (u, v), so result is reproducible.
  const auto a = kruskal_mst(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0},
                                 {0, 3, 1.0}});
  const auto b = kruskal_mst(4, {{0, 3, 1.0}, {2, 3, 1.0}, {1, 2, 1.0},
                                 {0, 1, 1.0}});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
  }
}

TEST(KConnectivity, PathGraphIsOnlyOneConnected) {
  const Graph g = path_graph(6);
  EXPECT_TRUE(is_k_connected(g, 1));
  EXPECT_FALSE(is_k_connected(g, 2));
}

TEST(KConnectivity, CycleIsTwoConnected) {
  Graph g(6);
  for (NodeId u = 0; u < 6; ++u) g.add_edge(u, (u + 1) % 6);
  EXPECT_TRUE(is_k_connected(g, 2));
  EXPECT_FALSE(is_k_connected(g, 3));
}

TEST(KConnectivity, CompleteGraphIsThreeConnected) {
  Graph g(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.add_edge(u, v);
  }
  EXPECT_TRUE(is_k_connected(g, 3));
}

TEST(KConnectivity, CutVertexDetected) {
  // Two triangles sharing vertex 2: connected but not 2-connected.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  EXPECT_TRUE(is_k_connected(g, 1));
  EXPECT_FALSE(is_k_connected(g, 2));
}

TEST(KConnectivity, TinyGraphConvention) {
  Graph pair(2);
  pair.add_edge(0, 1);
  EXPECT_TRUE(is_k_connected(pair, 2));  // complete on 2 vertices
  EXPECT_FALSE(is_k_connected(Graph(2), 2));
  EXPECT_TRUE(is_k_connected(Graph(1), 1));
}

TEST(KConnectivity, NeverExceedsMinDegree) {
  util::Xoshiro256 rng(2211);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8 + rng.uniform_below(12);
    Graph g(n);
    for (std::size_t i = 0; i < 3 * n; ++i) {
      const NodeId u = rng.uniform_below(n);
      const NodeId v = rng.uniform_below(n);
      if (u != v && !g.has_edge(u, v)) g.add_edge(u, v);
    }
    for (std::size_t k = 2; k <= 3; ++k) {
      if (is_k_connected(g, k)) {
        EXPECT_GE(min_degree(g), k) << "trial " << trial;
      }
    }
  }
}

TEST(MinDegree, Basics) {
  EXPECT_EQ(min_degree(Graph(0)), 0u);
  EXPECT_EQ(min_degree(Graph(3)), 0u);
  EXPECT_EQ(min_degree(path_graph(4)), 1u);
}

TEST(Dijkstra, ShortestPathOnKnownGraph) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 1.0);
  const auto sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 2.0);  // via node 1, not the direct edge
  EXPECT_DOUBLE_EQ(sp.distance[3], 3.0);
  EXPECT_EQ(sp.distance[4], kUnreachable);
  EXPECT_EQ(sp.parent[2], 1u);
  EXPECT_EQ(sp.parent[0], 0u);
}

TEST(Dijkstra, ParentsFormShortestPathTree) {
  util::Xoshiro256 rng(123);
  const std::size_t n = 40;
  Graph g(n);
  for (std::size_t i = 0; i < 4 * n; ++i) {
    const NodeId u = rng.uniform_below(n);
    const NodeId v = rng.uniform_below(n);
    if (u != v) g.add_edge(u, v, rng.uniform(0.5, 5.0));
  }
  const auto sp = dijkstra(g, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (sp.distance[u] == kUnreachable || u == 0) continue;
    const NodeId p = sp.parent[u];
    double edge = kUnreachable;
    for (const Edge& e : g.neighbors(p)) {
      if (e.to == u) edge = std::min(edge, e.weight);
    }
    EXPECT_NEAR(sp.distance[u], sp.distance[p] + edge, 1e-9);
  }
}

}  // namespace
}  // namespace mstc::graph
