#include "graph/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/prng.hpp"

namespace mstc::graph {
namespace {

using geom::Vec2;

std::vector<std::size_t> brute_force(const std::vector<Vec2>& points,
                                     Vec2 center, double radius) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (geom::distance(center, points[i]) <= radius) hits.push_back(i);
  }
  return hits;
}

TEST(SpatialGrid, EmptyPointSet) {
  const SpatialGrid grid({}, 10.0);
  std::vector<std::size_t> out{99};
  grid.query({0, 0}, 100.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialGrid, SinglePoint) {
  const std::vector<Vec2> points = {{5.0, 5.0}};
  const SpatialGrid grid(points, 10.0);
  std::vector<std::size_t> out;
  grid.query({0.0, 0.0}, 10.0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
  grid.query({0.0, 0.0}, 5.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpatialGrid, RadiusIsInclusive) {
  const std::vector<Vec2> points = {{3.0, 4.0}};
  const SpatialGrid grid(points, 5.0);
  std::vector<std::size_t> out;
  grid.query({0.0, 0.0}, 5.0, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(SpatialGrid, MatchesBruteForceOnRandomPoints) {
  util::Xoshiro256 rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec2> points;
    const std::size_t n = 50 + rng.uniform_below(200);
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      points.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
    }
    const SpatialGrid grid(points, 250.0);
    std::vector<std::size_t> out;
    for (int q = 0; q < 20; ++q) {
      const Vec2 center{rng.uniform(-50.0, 950.0), rng.uniform(-50.0, 950.0)};
      const double radius = rng.uniform(10.0, 400.0);
      grid.query(center, radius, out);
      std::sort(out.begin(), out.end());
      EXPECT_EQ(out, brute_force(points, center, radius));
    }
  }
}

TEST(SpatialGrid, QueryLargerThanCellSizeStillCorrect) {
  util::Xoshiro256 rng(56);
  std::vector<Vec2> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const SpatialGrid grid(points, 5.0);  // cells much smaller than query
  std::vector<std::size_t> out;
  grid.query({50.0, 50.0}, 80.0, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, brute_force(points, {50.0, 50.0}, 80.0));
}

TEST(SpatialGrid, QueryEmitsAscendingIndexOrder) {
  // Documented contract (see spatial_grid.hpp): results arrive in
  // ascending index order with NO caller-side sort — sim::Medium's
  // bit-identical receiver sets depend on it. Deliberately unsorted
  // comparison against brute force (which scans indices in order).
  util::Xoshiro256 rng(57);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Vec2> points;
    const std::size_t n = 100 + rng.uniform_below(300);
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      points.push_back({rng.uniform(0.0, 600.0), rng.uniform(0.0, 600.0)});
    }
    const SpatialGrid grid(points, 80.0);
    std::vector<std::size_t> out;
    for (int q = 0; q < 25; ++q) {
      const Vec2 center{rng.uniform(0.0, 600.0), rng.uniform(0.0, 600.0)};
      const double radius = rng.uniform(20.0, 250.0);
      grid.query(center, radius, out);
      EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
      EXPECT_EQ(out, brute_force(points, center, radius));
    }
  }
}

TEST(SpatialGrid, RebuildMatchesFreshConstruction) {
  util::Xoshiro256 rng(58);
  SpatialGrid reused;  // default-constructed: empty until rebuilt
  std::vector<std::size_t> out;
  reused.query({0.0, 0.0}, 1e9, out);
  EXPECT_TRUE(out.empty());

  for (int round = 0; round < 6; ++round) {
    std::vector<Vec2> points;
    const std::size_t n = 20 + rng.uniform_below(150);
    const double extent = rng.uniform(50.0, 800.0);
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      points.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
    }
    const double cell = rng.uniform(10.0, 200.0);
    reused.rebuild(points, cell);
    const SpatialGrid fresh(points, cell);
    EXPECT_EQ(reused.point_count(), n);
    std::vector<std::size_t> fresh_out;
    for (int q = 0; q < 10; ++q) {
      const Vec2 center{rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
      const double radius = rng.uniform(5.0, extent);
      reused.query(center, radius, out);
      fresh.query(center, radius, fresh_out);
      EXPECT_EQ(out, fresh_out);
      EXPECT_EQ(out, brute_force(points, center, radius));
    }
  }

  // Shrinking to empty and growing again must both work in place.
  reused.rebuild({}, 10.0);
  reused.query({0.0, 0.0}, 1e9, out);
  EXPECT_TRUE(out.empty());
  const std::vector<Vec2> one = {{1.0, 2.0}};
  reused.rebuild(one, 10.0);
  reused.query({1.0, 2.0}, 0.0, out);
  EXPECT_EQ(out, (std::vector<std::size_t>{0}));
}

TEST(SpatialGrid, DegenerateCellSizeIsCappedAtFleetScale) {
  // A cell size far below the point spacing (or the <= 0 fallback of 1.0
  // over a kilometers-wide span) must not materialize a table with
  // billions of cells: rebuild caps the cell count at O(n) by widening the
  // cells, and queries stay exact. Without the cap the first rebuild here
  // would try to allocate ~10^15 counters and the second would leave
  // every wide query scanning millions of slots.
  util::Xoshiro256 rng(77);
  std::vector<Vec2> points;
  for (std::size_t i = 0; i < 300; ++i) {
    points.push_back({rng.uniform(0.0, 1e6), rng.uniform(0.0, 1e6)});
  }
  std::vector<std::size_t> out;
  for (const double cell : {1e-9, 1.0, 0.0}) {
    const SpatialGrid grid(points, cell);
    for (int q = 0; q < 5; ++q) {
      const Vec2 center{rng.uniform(0.0, 1e6), rng.uniform(0.0, 1e6)};
      const double radius = rng.uniform(1e4, 5e5);
      grid.query(center, radius, out);
      EXPECT_EQ(out, brute_force(points, center, radius));
    }
  }
}

TEST(SpatialGrid, NegativeCoordinatesSupported) {
  const std::vector<Vec2> points = {{-100.0, -100.0}, {100.0, 100.0}};
  const SpatialGrid grid(points, 50.0);
  std::vector<std::size_t> out;
  grid.query({-100.0, -100.0}, 1.0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

}  // namespace
}  // namespace mstc::graph
