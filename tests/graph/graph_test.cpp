#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace mstc::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Graph, AddEdgeIsBidirectional) {
  Graph g(3);
  g.add_edge(0, 1, 2.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.degree(0), 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 2.5);
}

TEST(Graph, AddArcIsDirectional) {
  Graph g(2);
  g.add_arc(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Graph, EdgesListsUndirectedOnce) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 2.0);
  g.add_edge(1, 3, 3.0);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(Graph, AverageDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // degrees: 1, 2, 1, 0 -> average 1.0
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
}

}  // namespace
}  // namespace mstc::graph
