#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace mstc::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 2.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -2.0);
  EXPECT_DOUBLE_EQ(b.cross(a), 2.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, a), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ((Vec2{0.0, 0.0}).normalized(), (Vec2{0.0, 0.0}));
  const Vec2 unit = (Vec2{0.0, -7.0}).normalized();
  EXPECT_DOUBLE_EQ(unit.x, 0.0);
  EXPECT_DOUBLE_EQ(unit.y, -1.0);
}

TEST(Vec2, MidpointAndLerp) {
  const Vec2 a{0.0, 0.0}, b{10.0, 20.0};
  EXPECT_EQ(midpoint(a, b), (Vec2{5.0, 10.0}));
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.25), (Vec2{2.5, 5.0}));
}

TEST(Vec2, PolarAngle) {
  EXPECT_DOUBLE_EQ(polar_angle({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(polar_angle({0.0, 1.0}), std::numbers::pi / 2);
  EXPECT_DOUBLE_EQ(polar_angle({-1.0, 0.0}), std::numbers::pi);
  EXPECT_DOUBLE_EQ(polar_angle({0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace mstc::geom
