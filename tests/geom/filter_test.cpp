// Differential suite for the batched SoA range filter: the wide kernel
// (AVX2 / SSE2, whichever the build compiled in) must accept exactly the
// ids the portable scalar reference accepts, in the same order — the
// byte-identity contract the medium and snapshot paths rely on.
#include "geom/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "util/prng.hpp"

namespace mstc::geom {
namespace {

struct Fleet {
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::size_t> ids;
};

Fleet random_fleet(std::uint64_t seed, std::size_t count, double extent) {
  util::Xoshiro256 rng(seed);
  Fleet fleet;
  for (std::size_t i = 0; i < count; ++i) {
    fleet.xs.push_back(rng.uniform(0.0, extent));
    fleet.ys.push_back(rng.uniform(0.0, extent));
    fleet.ids.push_back(i);
  }
  return fleet;
}

std::vector<std::size_t> run_wide(const Fleet& fleet, Vec2 origin,
                                  double range_sq, std::size_t skip) {
  std::vector<std::size_t> out;
  filter_within_range(fleet.xs.data(), fleet.ys.data(), fleet.ids.data(),
                      fleet.ids.size(), origin, range_sq, skip, out);
  return out;
}

std::vector<std::size_t> run_scalar(const Fleet& fleet, Vec2 origin,
                                    double range_sq, std::size_t skip) {
  std::vector<std::size_t> out;
  filter_within_range_scalar(fleet.xs.data(), fleet.ys.data(),
                             fleet.ids.data(), fleet.ids.size(), origin,
                             range_sq, skip, out);
  return out;
}

TEST(Filter, BackendNameIsKnown) {
  const std::string backend = filter_backend_name();
  EXPECT_TRUE(backend == "avx2" || backend == "sse2" || backend == "scalar")
      << backend;
}

TEST(Filter, RandomizedFleetsMatchScalarByteForByte) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    // Sizes straddle the wide-block width so every remainder length
    // (0..3 for AVX2, 0..1 for SSE2) occurs repeatedly.
    const std::size_t count = 1 + static_cast<std::size_t>(seed * 7 % 67);
    const Fleet fleet = random_fleet(seed, count, 1000.0);
    util::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
    const Vec2 origin{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    const double range = rng.uniform(0.0, 500.0);
    const double range_sq = range * range;
    const auto wide = run_wide(fleet, origin, range_sq, kFilterNoSkip);
    const auto scalar = run_scalar(fleet, origin, range_sq, kFilterNoSkip);
    ASSERT_EQ(wide, scalar) << "seed " << seed;
    EXPECT_EQ(count_within_range(fleet.xs.data(), fleet.ys.data(), count,
                                 origin, range_sq),
              wide.size());
    EXPECT_EQ(count_within_range_scalar(fleet.xs.data(), fleet.ys.data(),
                                        count, origin, range_sq),
              scalar.size());
    // Input ids are ascending, so accepted ids must be too.
    for (std::size_t i = 1; i < wide.size(); ++i) {
      EXPECT_LT(wide[i - 1], wide[i]);
    }
  }
}

TEST(Filter, ExactRangeBoundaryIsAccepted) {
  // distance_sq == range_sq exactly: 3-4-5 triangles are representable,
  // and the predicate is <=, so the boundary point must be accepted by
  // both paths; one ulp outside must be rejected by both.
  Fleet fleet;
  fleet.xs = {3.0, std::nextafter(3.0, 4.0), 0.0};
  fleet.ys = {4.0, 4.0, 5.0};
  fleet.ids = {0, 1, 2};
  const Vec2 origin{0.0, 0.0};
  const double range_sq = 25.0;
  const auto wide = run_wide(fleet, origin, range_sq, kFilterNoSkip);
  const auto scalar = run_scalar(fleet, origin, range_sq, kFilterNoSkip);
  EXPECT_EQ(wide, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(wide, scalar);
}

TEST(Filter, DenormalsAndTinyRangesMatch) {
  const double denormal = std::numeric_limits<double>::denorm_min();
  Fleet fleet;
  fleet.xs = {0.0, denormal, 1e-308, -denormal, 5e-324};
  fleet.ys = {denormal, 0.0, -1e-308, denormal, 0.0};
  fleet.ids = {0, 1, 2, 3, 4};
  const Vec2 origin{0.0, 0.0};
  for (const double range_sq : {0.0, denormal, 1e-320, 1e-300}) {
    const auto wide = run_wide(fleet, origin, range_sq, kFilterNoSkip);
    const auto scalar = run_scalar(fleet, origin, range_sq, kFilterNoSkip);
    EXPECT_EQ(wide, scalar) << "range_sq " << range_sq;
  }
}

TEST(Filter, SkipExcludesExactlyThatId) {
  const Fleet fleet = random_fleet(42, 33, 100.0);
  const Vec2 origin{fleet.xs[10], fleet.ys[10]};
  const double range_sq = 50.0 * 50.0;
  const auto with_self = run_wide(fleet, origin, range_sq, kFilterNoSkip);
  const auto without = run_wide(fleet, origin, range_sq, 10);
  ASSERT_EQ(without.size() + 1, with_self.size());
  for (std::size_t id : without) EXPECT_NE(id, 10u);
  EXPECT_EQ(without, run_scalar(fleet, origin, range_sq, 10));
}

TEST(Filter, EmptyAndSingleElementInputs) {
  Fleet fleet;
  std::vector<std::size_t> out{99};
  filter_within_range(fleet.xs.data(), fleet.ys.data(), fleet.ids.data(), 0,
                      Vec2{0.0, 0.0}, 1.0, kFilterNoSkip, out);
  EXPECT_EQ(out, std::vector<std::size_t>{99});  // appends, never clears
  fleet.xs = {1.0};
  fleet.ys = {0.0};
  fleet.ids = {7};
  EXPECT_EQ(run_wide(fleet, {0.0, 0.0}, 1.0, kFilterNoSkip),
            (std::vector<std::size_t>{7}));
  EXPECT_EQ(run_wide(fleet, {0.0, 0.0}, 1.0, 7), std::vector<std::size_t>{});
}

}  // namespace
}  // namespace mstc::geom
