#include "geom/predicates.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <vector>

namespace mstc::geom {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(RngLune, WitnessInsideLune) {
  // u and v are 10 apart; w equidistant (6) from both lies in the lune.
  const Vec2 u{0.0, 0.0}, v{10.0, 0.0}, w{5.0, 3.0};
  ASSERT_LT(distance(u, w), 10.0);
  ASSERT_LT(distance(v, w), 10.0);
  EXPECT_TRUE(in_rng_lune(u, v, w));
}

TEST(RngLune, WitnessOutsideOneDisk) {
  const Vec2 u{0.0, 0.0}, v{10.0, 0.0};
  // Close to u but farther than |uv| from v.
  EXPECT_FALSE(in_rng_lune(u, v, {-1.0, 0.0}));
}

TEST(RngLune, BoundaryIsExcluded) {
  // w exactly at distance |uv| from u is NOT in the open lune.
  const Vec2 u{0.0, 0.0}, v{10.0, 0.0}, w{10.0, 0.0001};
  EXPECT_FALSE(in_rng_lune(u, v, w));
}

TEST(GabrielDisk, CenterPointInside) {
  const Vec2 u{0.0, 0.0}, v{10.0, 0.0};
  EXPECT_TRUE(in_gabriel_disk(u, v, {5.0, 0.0}));
  EXPECT_TRUE(in_gabriel_disk(u, v, {5.0, 4.9}));
  EXPECT_FALSE(in_gabriel_disk(u, v, {5.0, 5.0}));  // on the circle: excluded
  EXPECT_FALSE(in_gabriel_disk(u, v, {0.0, 1.0}));  // outside the disk
}

TEST(GabrielDisk, IsSubsetOfRngLune) {
  // Every point in the Gabriel disk is in the RNG lune (Gabriel ⊆ RNG
  // witness regions imply RNG ⊆ Gabriel as graphs).
  const Vec2 u{0.0, 0.0}, v{8.0, 0.0};
  for (double x = -10.0; x <= 18.0; x += 0.5) {
    for (double y = -10.0; y <= 10.0; y += 0.5) {
      const Vec2 w{x, y};
      if (in_gabriel_disk(u, v, w)) {
        EXPECT_TRUE(in_rng_lune(u, v, w)) << "at (" << x << "," << y << ")";
      }
    }
  }
}

TEST(AngleDifference, WrapsCorrectly) {
  EXPECT_NEAR(angle_difference(0.0, kPi / 2), kPi / 2, 1e-12);
  EXPECT_NEAR(angle_difference(-kPi + 0.1, kPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_difference(3 * kPi, 0.0), kPi, 1e-12);
}

TEST(ConeAngle, RightAngle) {
  const Vec2 apex{0.0, 0.0};
  EXPECT_NEAR(cone_angle(apex, {1.0, 0.0}, {0.0, 1.0}), kPi / 2, 1e-12);
}

TEST(YaoSector, PartitionsPlane) {
  const Vec2 c{0.0, 0.0};
  EXPECT_EQ(yao_sector(c, {1.0, 0.1}, 4), 0);
  EXPECT_EQ(yao_sector(c, {-0.1, 1.0}, 4), 1);
  EXPECT_EQ(yao_sector(c, {-1.0, -0.1}, 4), 2);
  EXPECT_EQ(yao_sector(c, {0.1, -1.0}, 4), 3);
}

TEST(YaoSector, AllSectorsInRange) {
  const Vec2 c{0.0, 0.0};
  for (int k = 1; k <= 12; ++k) {
    for (double angle = -kPi; angle < kPi; angle += 0.05) {
      const Vec2 p{std::cos(angle), std::sin(angle)};
      const int s = yao_sector(c, p, k);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, k);
    }
  }
}

TEST(MaxAngularGap, NoNeighborsIsFullCircle) {
  EXPECT_DOUBLE_EQ(max_angular_gap({0, 0}, nullptr, 0), 2 * kPi);
}

TEST(MaxAngularGap, SingleNeighborIsFullCircle) {
  const Vec2 n{1.0, 0.0};
  EXPECT_NEAR(max_angular_gap({0, 0}, &n, 1), 2 * kPi, 1e-12);
}

TEST(MaxAngularGap, FourCardinalNeighbors) {
  const std::vector<Vec2> n = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  EXPECT_NEAR(max_angular_gap({0, 0}, n.data(), 4), kPi / 2, 1e-12);
}

TEST(ConeCoverage, DetectsGap) {
  // Three neighbors clustered in a half-plane leave a gap > pi.
  const std::vector<Vec2> n = {{1, 0}, {1, 1}, {0, 1}};
  EXPECT_FALSE(cone_coverage_complete({0, 0}, n.data(), 3, 5 * kPi / 6));
  // Adding a neighbor behind closes the gap below 5*pi/6.
  const std::vector<Vec2> n2 = {{1, 0}, {1, 1}, {0, 1}, {-1, -1}};
  EXPECT_TRUE(cone_coverage_complete({0, 0}, n2.data(), 4, 5 * kPi / 6));
}

}  // namespace
}  // namespace mstc::geom
