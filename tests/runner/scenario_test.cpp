// End-to-end integration tests of the simulation runner. Each test uses a
// shortened scenario (12 simulated seconds) to stay fast; the qualitative
// assertions mirror the paper's findings with wide margins so they are
// robust to the reduced duration.
#include "runner/scenario.hpp"

#include <gtest/gtest.h>

#include "runner/sweep.hpp"
#include "util/prng.hpp"

namespace mstc::runner {
namespace {

ScenarioConfig quick(const std::string& protocol, double speed) {
  ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.average_speed = speed;
  cfg.duration = 12.0;
  cfg.warmup = 2.5;
  cfg.seed = 12345;
  return cfg;
}

bool stats_equal(const metrics::RunStats& a, const metrics::RunStats& b) {
  return a.delivery_ratio == b.delivery_ratio &&
         a.strict_connectivity == b.strict_connectivity &&
         a.mean_range == b.mean_range &&
         a.mean_logical_degree == b.mean_logical_degree &&
         a.mean_physical_degree == b.mean_physical_degree;
}

TEST(Scenario, DeterministicForSameSeed) {
  const auto cfg = quick("RNG", 20.0);
  EXPECT_TRUE(stats_equal(run_scenario(cfg), run_scenario(cfg)));
}

TEST(Scenario, DifferentSeedsProduceDifferentRuns) {
  auto cfg = quick("RNG", 20.0);
  const auto a = run_scenario(cfg);
  cfg.seed = 54321;
  const auto b = run_scenario(cfg);
  EXPECT_FALSE(stats_equal(a, b));
}

TEST(Scenario, MetricsAreWithinBounds) {
  for (const char* protocol : {"MST", "RNG", "SPT-2", "SPT-4"}) {
    const auto stats = run_scenario(quick(protocol, 20.0));
    EXPECT_GE(stats.delivery_ratio, 0.0) << protocol;
    EXPECT_LE(stats.delivery_ratio, 1.0) << protocol;
    EXPECT_GE(stats.strict_connectivity, 0.0) << protocol;
    EXPECT_LE(stats.strict_connectivity, 1.0) << protocol;
    EXPECT_GT(stats.mean_range, 0.0) << protocol;
    EXPECT_LT(stats.mean_range, 250.0) << protocol;
    EXPECT_GT(stats.mean_logical_degree, 0.0) << protocol;
  }
}

TEST(Scenario, StaticNetworkIsFullyConnected) {
  // With no mobility every protocol keeps a connected logical topology and
  // floods reach every node (the paper's static-case guarantee).
  for (const char* protocol : {"MST", "RNG", "SPT-2"}) {
    auto cfg = quick(protocol, 1.0);
    cfg.mobility_model = "static";
    const auto stats = run_scenario(cfg);
    EXPECT_DOUBLE_EQ(stats.delivery_ratio, 1.0) << protocol;
    EXPECT_DOUBLE_EQ(stats.strict_connectivity, 1.0) << protocol;
  }
}

TEST(Scenario, MobilityDegradesConnectivity) {
  // Fig. 6: baselines are vulnerable to mobility, badly so at high speed.
  const auto slow = run_scenario(quick("RNG", 1.0));
  const auto fast = run_scenario(quick("RNG", 80.0));
  EXPECT_GT(slow.delivery_ratio, fast.delivery_ratio);
  EXPECT_LT(fast.delivery_ratio, 0.25);
}

TEST(Scenario, MstIsMostVulnerableAndSpt2Strongest) {
  // Fig. 6's protocol ordering at moderate speed.
  const auto mst = run_scenario(quick("MST", 20.0));
  const auto spt2 = run_scenario(quick("SPT-2", 20.0));
  EXPECT_LT(mst.delivery_ratio, spt2.delivery_ratio);
  EXPECT_GT(spt2.delivery_ratio, 0.4);
  EXPECT_LT(mst.delivery_ratio, 0.3);
}

TEST(Scenario, BufferZoneImprovesConnectivity) {
  // Fig. 7: a 100 m buffer rescues RNG at moderate speed.
  auto cfg = quick("RNG", 40.0);
  const auto bare = run_scenario(cfg);
  cfg.buffer_width = 100.0;
  const auto buffered = run_scenario(cfg);
  EXPECT_GT(buffered.delivery_ratio, bare.delivery_ratio + 0.3);
  EXPECT_GT(buffered.mean_range, bare.mean_range);
  EXPECT_DOUBLE_EQ(buffered.mean_logical_degree, bare.mean_logical_degree)
      << "buffer zones change ranges, not logical selections";
}

TEST(Scenario, ViewSynchronizationImprovesConnectivity) {
  // Fig. 9: VS + 100 m buffer lets MST tolerate moderate mobility.
  auto cfg = quick("MST", 40.0);
  cfg.buffer_width = 100.0;
  const auto plain = run_scenario(cfg);
  cfg.mode = core::ConsistencyMode::kViewSync;
  const auto synced = run_scenario(cfg);
  EXPECT_GT(synced.delivery_ratio, plain.delivery_ratio + 0.2);
  EXPECT_GT(synced.delivery_ratio, 0.85);
}

TEST(Scenario, PhysicalNeighborsWithLargeBufferNearPerfect) {
  // Fig. 10: PN + 100 m buffer achieves ~100 % even under high mobility.
  auto cfg = quick("MST", 80.0);
  cfg.buffer_width = 100.0;
  cfg.physical_neighbors = true;
  const auto stats = run_scenario(cfg);
  EXPECT_GT(stats.delivery_ratio, 0.95);
  EXPECT_GT(stats.strict_connectivity, 0.9);
}

TEST(Scenario, WeakConsistencyImprovesOverBaseline) {
  auto cfg = quick("RNG", 40.0);
  cfg.buffer_width = 10.0;
  const auto baseline = run_scenario(cfg);
  cfg.mode = core::ConsistencyMode::kWeak;
  const auto weak = run_scenario(cfg);
  EXPECT_GT(weak.delivery_ratio, baseline.delivery_ratio + 0.2);
  EXPECT_GT(weak.mean_logical_degree, baseline.mean_logical_degree)
      << "conservative decisions keep more links";
}

TEST(Scenario, ReactiveSynchronizationImprovesOverBaseline) {
  auto cfg = quick("RNG", 40.0);
  cfg.buffer_width = 10.0;
  const auto baseline = run_scenario(cfg);
  cfg.mode = core::ConsistencyMode::kReactive;
  const auto reactive = run_scenario(cfg);
  EXPECT_GT(reactive.delivery_ratio, baseline.delivery_ratio + 0.1);
}

TEST(Scenario, ProactiveModeRunsWithAdaptiveBuffer) {
  auto cfg = quick("RNG", 20.0);
  cfg.mode = core::ConsistencyMode::kProactive;
  cfg.adaptive_buffer = true;
  const auto stats = run_scenario(cfg);
  EXPECT_GT(stats.delivery_ratio, 0.5)
      << "strong consistency + Theorem 5 buffer tolerates moderate speed";
}

TEST(Scenario, HelloLossIsToleratedByWeakConsistency) {
  auto cfg = quick("RNG", 10.0);
  cfg.hello_loss = 0.2;
  cfg.mode = core::ConsistencyMode::kWeak;
  cfg.history_limit = 3;  // extra records absorb losses (Section 4.2)
  const auto stats = run_scenario(cfg);
  EXPECT_GT(stats.delivery_ratio, 0.3);
}

TEST(Scenario, AlternativeMobilityModelsRun) {
  for (const char* model : {"walk", "gauss"}) {
    auto cfg = quick("SPT-2", 10.0);
    cfg.mobility_model = model;
    const auto stats = run_scenario(cfg);
    EXPECT_GT(stats.delivery_ratio, 0.2) << model;
    EXPECT_LE(stats.delivery_ratio, 1.0) << model;
  }
}

TEST(Scenario, ControlOverheadAccounting) {
  // Latest mode: one Hello per node per ~1 s interval. Reactive mode adds
  // the per-round initiation flood, roughly doubling the control traffic —
  // Section 4.1's "significant traffic" remark, quantified.
  auto cfg = quick("RNG", 10.0);
  const auto latest = run_scenario(cfg);
  EXPECT_NEAR(latest.control_tx_rate, 1.0, 0.35);
  cfg.mode = core::ConsistencyMode::kReactive;
  const auto reactive = run_scenario(cfg);
  EXPECT_GT(reactive.control_tx_rate, 1.5 * latest.control_tx_rate);
}

TEST(Scenario, SearchRegionProtocolRunsEndToEnd) {
  auto cfg = quick("SPT-R", 20.0);
  cfg.mode = core::ConsistencyMode::kViewSync;
  cfg.buffer_width = 10.0;
  const auto stats = run_scenario(cfg);
  EXPECT_GT(stats.delivery_ratio, 0.2);
  EXPECT_LT(stats.mean_range, 250.0);
}

TEST(Scenario, CsmaMacRunsAndCausesSomeCollisions) {
  auto cfg = quick("RNG", 20.0);
  cfg.mode = core::ConsistencyMode::kViewSync;
  cfg.buffer_width = 10.0;
  cfg.mac = "csma";
  const auto stats = run_scenario(cfg);
  EXPECT_GT(stats.mac_collision_fraction, 0.0);
  EXPECT_LT(stats.mac_collision_fraction, 0.5)
      << "collisions should be a perturbation, not a collapse";
  EXPECT_GT(stats.delivery_ratio, 0.2);
}

TEST(Scenario, IdealMacReportsNoCollisions) {
  const auto stats = run_scenario(quick("RNG", 20.0));
  EXPECT_DOUBLE_EQ(stats.mac_collision_fraction, 0.0);
}

TEST(Scenario, UnknownMacThrows) {
  auto cfg = quick("RNG", 1.0);
  cfg.mac = "aloha";
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

TEST(Scenario, UnknownProtocolThrows) {
  auto cfg = quick("definitely-not-a-protocol", 1.0);
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

TEST(Scenario, UnknownMobilityModelThrows) {
  auto cfg = quick("RNG", 1.0);
  cfg.mobility_model = "teleport";
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

TEST(Sweep, RepeatedRunsMatchManualDerivation) {
  auto cfg = quick("RNG", 20.0);
  cfg.duration = 8.0;
  const auto aggregated = run_repeated(cfg, 3);
  EXPECT_EQ(aggregated.runs(), 3u);
  metrics::RunAggregator manual;
  for (std::size_t r = 0; r < 3; ++r) {
    ScenarioConfig replica = cfg;
    replica.seed = util::derive_seed(cfg.seed, r + 1);
    manual.add(run_scenario(replica));
  }
  EXPECT_DOUBLE_EQ(aggregated.delivery().mean(), manual.delivery().mean());
  EXPECT_DOUBLE_EQ(aggregated.strict().mean(), manual.strict().mean());
}

TEST(Sweep, BatchKeepsConfigOrder) {
  auto fragile = quick("MST", 40.0);
  auto robust = quick("MST", 40.0);
  robust.physical_neighbors = true;
  robust.buffer_width = 100.0;
  fragile.duration = robust.duration = 8.0;
  const auto results = run_batch({fragile, robust}, 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].runs(), 2u);
  EXPECT_LT(results[0].delivery().mean(), results[1].delivery().mean());
}

}  // namespace
}  // namespace mstc::runner
