#include "runner/config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mstc::runner {
namespace {

class ConfigEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* name :
         {"MSTC_PAPER_SCALE", "MSTC_SIM_TIME", "MSTC_NODES", "MSTC_FLOOD_RATE",
          "MSTC_SNAPSHOT_RATE", "MSTC_WARMUP", "MSTC_REPEATS"}) {
      ::unsetenv(name);
    }
  }
};

TEST_F(ConfigEnvTest, DefaultsMatchPaperSection51) {
  const ScenarioConfig cfg;
  EXPECT_EQ(cfg.node_count, 100u);
  EXPECT_DOUBLE_EQ(cfg.area.width, 900.0);
  EXPECT_DOUBLE_EQ(cfg.area.height, 900.0);
  EXPECT_DOUBLE_EQ(cfg.normal_range, 250.0);
  EXPECT_EQ(cfg.mobility_model, "waypoint");
  EXPECT_DOUBLE_EQ(cfg.hello_interval, 1.0);
  EXPECT_DOUBLE_EQ(cfg.hello_jitter, 0.25);
}

TEST_F(ConfigEnvTest, PaperScaleRestoresFullParameters) {
  const ScenarioConfig cfg = paper_scale({});
  EXPECT_DOUBLE_EQ(cfg.duration, 100.0);
  EXPECT_DOUBLE_EQ(cfg.flood_rate, 10.0);
  EXPECT_DOUBLE_EQ(cfg.snapshot_rate, 10.0);
}

TEST_F(ConfigEnvTest, EnvOverridesApply) {
  ::setenv("MSTC_SIM_TIME", "55", 1);
  ::setenv("MSTC_NODES", "42", 1);
  const ScenarioConfig cfg = apply_env_overrides({});
  EXPECT_DOUBLE_EQ(cfg.duration, 55.0);
  EXPECT_EQ(cfg.node_count, 42u);
}

TEST_F(ConfigEnvTest, PaperScaleFlagAppliesBeforeOverrides) {
  ::setenv("MSTC_PAPER_SCALE", "1", 1);
  ::setenv("MSTC_FLOOD_RATE", "2", 1);
  const ScenarioConfig cfg = apply_env_overrides({});
  EXPECT_DOUBLE_EQ(cfg.duration, 100.0);   // from paper scale
  EXPECT_DOUBLE_EQ(cfg.flood_rate, 2.0);   // env wins over paper scale
}

TEST_F(ConfigEnvTest, SweepRepeatsDefaultAndEnv) {
  EXPECT_EQ(sweep_repeats(5), 5u);
  ::setenv("MSTC_REPEATS", "9", 1);
  EXPECT_EQ(sweep_repeats(5), 9u);
}

TEST_F(ConfigEnvTest, PaperScaleImpliesTwentyRepeats) {
  ::setenv("MSTC_PAPER_SCALE", "1", 1);
  EXPECT_EQ(sweep_repeats(5), 20u);
  ::setenv("MSTC_REPEATS", "7", 1);
  EXPECT_EQ(sweep_repeats(5), 7u);
}

TEST(EffectiveHistory, ModeDefaults) {
  ScenarioConfig cfg;
  cfg.mode = core::ConsistencyMode::kLatest;
  EXPECT_EQ(cfg.effective_history(), 1u);
  cfg.mode = core::ConsistencyMode::kWeak;
  EXPECT_EQ(cfg.effective_history(), 2u);
  cfg.mode = core::ConsistencyMode::kProactive;
  EXPECT_EQ(cfg.effective_history(), 3u);
  cfg.history_limit = 5;
  EXPECT_EQ(cfg.effective_history(), 5u) << "explicit value wins";
}

}  // namespace
}  // namespace mstc::runner
