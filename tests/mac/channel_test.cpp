#include "mac/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mstc::mac {
namespace {

using geom::Vec2;
using mobility::Leg;
using mobility::Trace;

std::vector<Trace> nodes_at(std::initializer_list<double> xs) {
  std::vector<Trace> traces;
  for (double x : xs) {
    traces.push_back(Trace({Leg{0.0, {x, 0.0}, {0.0, 0.0}}}, 100.0));
  }
  return traces;
}

class ChannelTest : public ::testing::Test {
 protected:
  sim::Simulator simulator_;
};

TEST_F(ChannelTest, SingleTransmissionIsDelivered) {
  const auto traces = nodes_at({0.0, 50.0, 500.0});
  const sim::Medium medium(traces, {});
  ContentionChannel channel(simulator_, medium, {}, 1);
  std::vector<sim::NodeId> received;
  channel.transmit(0, 100.0, 512,
                   [&](sim::NodeId v) { received.push_back(v); });
  simulator_.run_all();
  EXPECT_EQ(received, (std::vector<sim::NodeId>{1}));
  EXPECT_EQ(channel.frames_sent(), 1u);
  EXPECT_EQ(channel.receptions(), 1u);
  EXPECT_EQ(channel.collisions(), 0u);
  EXPECT_EQ(channel.frames_dropped(), 0u);
}

TEST_F(ChannelTest, HiddenTerminalsCollideAtTheReceiver) {
  // Senders at 0 and 150 (range 100: they cannot hear each other), victim
  // at 75 hears both: simultaneous frames destroy each other there.
  const auto traces = nodes_at({0.0, 75.0, 150.0});
  const sim::Medium medium(traces, {});
  ContentionChannel channel(simulator_, medium, {}, 2);
  int deliveries = 0;
  simulator_.schedule_at(1.0, [&] {
    channel.transmit(0, 100.0, 512, [&](sim::NodeId) { ++deliveries; });
  });
  simulator_.schedule_at(1.0, [&] {
    channel.transmit(2, 100.0, 512, [&](sim::NodeId) { ++deliveries; });
  });
  simulator_.run_all();
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(channel.collisions(), 2u);  // node 1 loses both frames
  EXPECT_EQ(channel.frames_sent(), 2u);
}

TEST_F(ChannelTest, CarrierSenseDefersAndBothDeliver) {
  // Senders hear each other: the second defers (backoff) and both frames
  // are eventually delivered collision-free.
  const auto traces = nodes_at({0.0, 30.0, 60.0});
  const sim::Medium medium(traces, {});
  ContentionChannel::Config config;
  config.max_attempts = 50;  // plenty of retries: the frame is ~1 ms long
  ContentionChannel channel(simulator_, medium, config, 3);
  int deliveries = 0;
  simulator_.schedule_at(1.0, [&] {
    channel.transmit(0, 100.0, 2048, [&](sim::NodeId) { ++deliveries; });
  });
  simulator_.schedule_at(1.0 + 1e-6, [&] {
    channel.transmit(2, 100.0, 2048, [&](sim::NodeId) { ++deliveries; });
  });
  simulator_.run_all();
  // Each frame reaches the two other nodes.
  EXPECT_EQ(deliveries, 4);
  EXPECT_EQ(channel.collisions(), 0u);
  EXPECT_EQ(channel.frames_dropped(), 0u);
}

TEST_F(ChannelTest, BackoffExhaustionDrops) {
  const auto traces = nodes_at({0.0, 30.0});
  const sim::Medium medium(traces, {});
  ContentionChannel::Config config;
  config.max_attempts = 1;  // give up immediately when busy
  ContentionChannel channel(simulator_, medium, config, 4);
  bool dropped = false;
  int deliveries = 0;
  simulator_.schedule_at(1.0, [&] {
    channel.transmit(0, 100.0, 200000,  // 100 ms frame keeps channel busy
                     [&](sim::NodeId) { ++deliveries; });
  });
  simulator_.schedule_at(1.001, [&] {
    channel.transmit(1, 100.0, 512, [&](sim::NodeId) { ++deliveries; },
                     [&] { dropped = true; });
  });
  simulator_.run_all();
  EXPECT_TRUE(dropped);
  EXPECT_EQ(channel.frames_dropped(), 1u);
  EXPECT_EQ(deliveries, 1);  // only the long frame got through
}

TEST_F(ChannelTest, OutOfRangeHearsNothing) {
  const auto traces = nodes_at({0.0, 300.0});
  const sim::Medium medium(traces, {});
  ContentionChannel channel(simulator_, medium, {}, 5);
  int deliveries = 0;
  channel.transmit(0, 100.0, 512, [&](sim::NodeId) { ++deliveries; });
  simulator_.run_all();
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(channel.receptions(), 0u);
}

TEST_F(ChannelTest, InterferenceFactorExtendsJamRadius) {
  // Victim at 180 is outside the jammer's decode range (100) but inside
  // its interference range (100 * 2 = 200): the frame from node 2 dies.
  const auto traces = nodes_at({0.0, 180.0, 250.0});
  const sim::Medium medium(traces, {});
  ContentionChannel::Config config;
  config.interference_factor = 2.0;
  ContentionChannel channel(simulator_, medium, config, 6);
  int deliveries = 0;
  simulator_.schedule_at(1.0, [&] {
    channel.transmit(0, 100.0, 2048, [&](sim::NodeId) { ++deliveries; });
  });
  simulator_.schedule_at(1.0, [&] {
    channel.transmit(2, 100.0, 2048, [&](sim::NodeId) { ++deliveries; });
  });
  simulator_.run_all();
  // Node 1 is jammed for node 2's frame; node 0's frame reaches nobody
  // (node 1 at 180 > 100). So zero deliveries and one collision.
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(channel.collisions(), 1u);
}

}  // namespace
}  // namespace mstc::mac
