// Observability layer tests: counter/histogram units, probe on/off
// semantics, exporters, exact-count validation against a hand-checked
// scenario, and sweep progress hooks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/manifest.hpp"
#include "obs/probe.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "util/thread_pool.hpp"

namespace mstc::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- counters & histograms ---------------------------------------------

TEST(Histogram, BucketsByUpperEdgeWithOverflow) {
  Histogram h({1.0, 2.0, 5.0});
  ASSERT_EQ(h.bucket_count(), 4u);  // three edges + overflow
  h.add(0.5);   // < 1
  h.add(1.0);   // not < 1 -> second bucket
  h.add(1.5);   // < 2
  h.add(4.9);   // < 5
  h.add(5.0);   // overflow
  h.add(100.0); // overflow
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.9 + 5.0 + 100.0);
  EXPECT_TRUE(std::isinf(h.upper_edge(3)));
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a({1.0});
  Histogram b({1.0});
  a.add(0.5);
  b.add(0.25);
  b.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.bucket(0), 2u);
  EXPECT_EQ(a.bucket(1), 1u);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), (0.5 + 0.25 + 2.0) / 3.0);
}

TEST(CounterRegistry, GlobalAndPerNodeScopes) {
  CounterRegistry registry;
  registry.add(Counter::kSnapshots);
  registry.add_node(Counter::kHelloTx, 3, 2);
  registry.add_node(Counter::kHelloTx, 0);
  EXPECT_EQ(registry.total(Counter::kSnapshots), 1u);
  EXPECT_EQ(registry.total(Counter::kHelloTx), 3u);
  EXPECT_EQ(registry.node_total(Counter::kHelloTx, 3), 2u);
  EXPECT_EQ(registry.node_total(Counter::kHelloTx, 0), 1u);
  EXPECT_EQ(registry.node_total(Counter::kHelloTx, 99), 0u);
  EXPECT_EQ(registry.node_count(), 4u);
}

TEST(CounterRegistry, MergeFoldsTotalsNodesAndHistograms) {
  CounterRegistry a;
  CounterRegistry b;
  a.add_node(Counter::kHelloRx, 1);
  b.add_node(Counter::kHelloRx, 5, 7);
  b.histogram(Hist::kFloodDeliveryRatio).add(0.42);
  a.merge(b);
  EXPECT_EQ(a.total(Counter::kHelloRx), 8u);
  EXPECT_EQ(a.node_total(Counter::kHelloRx, 5), 7u);
  EXPECT_EQ(a.node_count(), 6u);
  EXPECT_EQ(a.histogram(Hist::kFloodDeliveryRatio).count(), 1u);
}

TEST(CounterNames, AreStableSnakeCase) {
  EXPECT_STREQ(counter_name(Counter::kHelloTx), "hello_tx");
  EXPECT_STREQ(counter_name(Counter::kBufferZoneExpansions),
               "buffer_zone_expansions");
  EXPECT_STREQ(hist_name(Hist::kEpidemicDelay), "epidemic_delay_s");
  EXPECT_STREQ(event_kind_name(EventKind::kTopologyRecompute),
               "topology_recompute");
  EXPECT_STREQ(category_name(Category::kDataFlood), "data_flood");
}

// --- probe on/off semantics --------------------------------------------

TEST(Probe, DisabledProbeIsInert) {
  const Probe probe;  // default: permanently off
  EXPECT_FALSE(probe.counting());
  EXPECT_FALSE(probe.tracing());
  EXPECT_EQ(probe.profiler(), nullptr);
  // Must be safe no-ops.
  probe.count(Counter::kHelloTx);
  probe.count_node(Counter::kHelloRx, 7);
  probe.observe(Hist::kEpidemicDelay, 1.0);
  probe.trace(EventKind::kHelloTx, 0.0, 0);
}

TEST(Probe, CountsTracesAndProfilesWhenEnabled) {
  RunObservation observation;
  observation.trace_on = true;
  observation.profile_on = true;
  const Probe probe(&observation);
  EXPECT_TRUE(probe.counting());
  EXPECT_TRUE(probe.tracing());
  ASSERT_NE(probe.profiler(), nullptr);

  probe.count_node(Counter::kHelloTx, 2);
  probe.trace(EventKind::kHelloTx, 1.5, 2, 0.0, 9);
  { const ScopedTimer timer(probe.profiler(), Category::kBeaconing); }

  EXPECT_EQ(observation.counters.total(Counter::kHelloTx), 1u);
  ASSERT_EQ(observation.trace.size(), 1u);
  EXPECT_EQ(observation.trace.events()[0].node, 2u);
  EXPECT_EQ(observation.trace.events()[0].aux, 9u);
  EXPECT_EQ(observation.profiler.calls(Category::kBeaconing), 1u);
}

TEST(Probe, TracingOffKeepsSinkEmpty) {
  RunObservation observation;  // trace_on defaults to false
  const Probe probe(&observation);
  probe.trace(EventKind::kHelloTx, 1.0, 0);
  EXPECT_TRUE(observation.trace.empty());
  probe.count(Counter::kHelloTx);
  EXPECT_EQ(observation.counters.total(Counter::kHelloTx), 1u);
}

// --- exporters ----------------------------------------------------------

std::vector<const MemoryTraceSink*> two_run_sinks(MemoryTraceSink& a,
                                                  MemoryTraceSink& b) {
  a.record({0.5, 1, EventKind::kHelloTx, 0.0, 3});
  a.record({1.0, 2, EventKind::kFloodScored, 0.75, 0});
  b.record({2.0, 0, EventKind::kSnapshot, 1.0, 0});
  return {&a, &b};
}

TEST(TraceExport, JsonlOneObjectPerLine) {
  MemoryTraceSink a;
  MemoryTraceSink b;
  const auto sinks = two_run_sinks(a, b);
  const std::string path = testing::TempDir() + "obs_trace.jsonl";
  ASSERT_TRUE(write_jsonl(path, sinks));
  const std::string content = slurp(path);

  std::istringstream lines(content);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_NE(content.find("\"kind\":\"hello_tx\""), std::string::npos);
  EXPECT_NE(content.find("\"run\":1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExport, ChromeTraceHasProcessesThreadsAndInstants) {
  MemoryTraceSink a;
  MemoryTraceSink b;
  const auto sinks = two_run_sinks(a, b);
  const std::string path = testing::TempDir() + "obs_trace.json";
  ASSERT_TRUE(write_chrome_trace(path, sinks));
  const std::string content = slurp(path);
  EXPECT_EQ(content.front(), '{');
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"process_name\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"i\""), std::string::npos);
  // 0.5 sim-seconds -> 500000 trace microseconds.
  EXPECT_NE(content.find("500000"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExport, FailsOnUnwritablePath) {
  MemoryTraceSink sink;
  EXPECT_FALSE(write_jsonl("/nonexistent-dir/x.jsonl", {&sink}));
  EXPECT_FALSE(write_chrome_trace("/nonexistent-dir/x.json", {&sink}));
}

TEST(Manifest, EmitsConfigCountersAndProfile) {
  CounterRegistry counters;
  counters.add_node(Counter::kHelloTx, 0, 11);
  counters.histogram(Hist::kFloodDeliveryRatio).add(0.9);
  Profiler profiler;
  profiler.add(Category::kSetup, 1000);
  profiler.add_run(2000, 42);

  Manifest manifest;
  manifest.tool = "test";
  manifest.seed = 7;
  manifest.configurations = 1;
  manifest.repeats = 3;
  manifest.config = {{"protocol", "RNG"}, {"quote", "a\"b"}};
  manifest.counters = &counters;
  manifest.profiler = &profiler;
  manifest.sweep_wall_seconds = 0.5;
  manifest.pool_threads = 4;

  const std::string path = testing::TempDir() + "obs_manifest.json";
  ASSERT_TRUE(write_manifest(path, manifest));
  const std::string content = slurp(path);
  EXPECT_NE(content.find("\"tool\": \"test\""), std::string::npos);
  EXPECT_NE(content.find("\"hello_tx\": 11"), std::string::npos);
  EXPECT_NE(content.find("flood_delivery_ratio"), std::string::npos);
  EXPECT_NE(content.find("\"protocol\": \"RNG\""), std::string::npos);
  EXPECT_NE(content.find("a\\\"b"), std::string::npos);
  EXPECT_NE(content.find("events_per_second"), std::string::npos);
  EXPECT_NE(content.find(build_version()), std::string::npos);
  std::remove(path.c_str());
}

TEST(Manifest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
}

// --- exact-count validation against a hand-checked scenario -------------

// Proactive beaconing fires synchronized rounds at t = 0, 1, ..., 10 (the
// per-node skew is < 0.1 * interval, so round 10 lands by t <= 10.1 and a
// 10.5 s run processes every one): 11 Hellos per node. Static nodes in a
// 40 x 40 m arena with a 250 m range all hear each other, and with zero
// loss every Hello reaches all N-1 peers.
TEST(ExactCounts, ProactiveHelloTxAndRxMatchClosedForm) {
  runner::ScenarioConfig cfg;
  cfg.node_count = 5;
  cfg.area = {40.0, 40.0};
  cfg.mobility_model = "static";
  cfg.normal_range = 250.0;
  cfg.mode = core::ConsistencyMode::kProactive;
  cfg.hello_interval = 1.0;
  cfg.hello_loss = 0.0;
  cfg.duration = 10.5;
  cfg.flood_rate = 0.0;
  cfg.snapshot_rate = 0.0;
  cfg.seed = 20040426;

  RunObservation observation;
  const auto stats = runner::run_scenario(cfg, &observation);
  (void)stats;

  constexpr std::uint64_t kRounds = 11;  // t = 0 .. 10
  const std::uint64_t n = cfg.node_count;
  EXPECT_EQ(observation.counters.total(Counter::kHelloTx), kRounds * n);
  EXPECT_EQ(observation.counters.total(Counter::kHelloRx),
            kRounds * n * (n - 1));
  EXPECT_EQ(observation.counters.total(Counter::kHelloLossDrops), 0u);
  EXPECT_EQ(observation.counters.total(Counter::kSnapshots), 0u);
  for (std::size_t u = 0; u < n; ++u) {
    EXPECT_EQ(observation.counters.node_total(Counter::kHelloTx, u), kRounds)
        << "node " << u;
  }
}

TEST(ExactCounts, HelloLossDropsAccountForEveryLostReception) {
  runner::ScenarioConfig cfg;
  cfg.node_count = 5;
  cfg.area = {40.0, 40.0};
  cfg.mobility_model = "static";
  cfg.mode = core::ConsistencyMode::kProactive;
  cfg.hello_interval = 1.0;
  cfg.hello_loss = 0.5;
  cfg.duration = 10.5;
  cfg.flood_rate = 0.0;
  cfg.snapshot_rate = 0.0;
  cfg.seed = 20040426;

  RunObservation observation;
  (void)runner::run_scenario(cfg, &observation);
  const std::uint64_t n = cfg.node_count;
  const std::uint64_t offered = 11 * n * (n - 1);
  EXPECT_EQ(observation.counters.total(Counter::kHelloRx) +
                observation.counters.total(Counter::kHelloLossDrops),
            offered);
  EXPECT_GT(observation.counters.total(Counter::kHelloLossDrops), 0u);
}

TEST(ExactCounts, SnapshotCountMatchesSchedule) {
  runner::ScenarioConfig cfg;
  cfg.node_count = 4;
  cfg.mobility_model = "static";
  cfg.duration = 6.0;
  cfg.warmup = 1.0;
  cfg.flood_rate = 0.0;
  cfg.snapshot_rate = 1.0;  // t = 1, 2, 3, 4, 5, 6
  cfg.seed = 3;

  RunObservation observation;
  (void)runner::run_scenario(cfg, &observation);
  EXPECT_EQ(observation.counters.total(Counter::kSnapshots), 6u);
  EXPECT_EQ(
      observation.counters.histogram(Hist::kSnapshotConnectivity).count(),
      6u);
}

// --- trace recording in a live run --------------------------------------

TEST(TraceRecording, EventsAreTimeOrderedAndPopulated) {
  runner::ScenarioConfig cfg;
  cfg.node_count = 10;
  cfg.duration = 4.0;
  cfg.warmup = 1.0;
  cfg.seed = 11;

  RunObservation observation;
  observation.trace_on = true;
  (void)runner::run_scenario(cfg, &observation);
  const auto& events = observation.trace.events();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].time, events[i].time) << "at record " << i;
  }
  bool saw_hello = false;
  bool saw_recompute = false;
  for (const TraceEvent& event : events) {
    saw_hello = saw_hello || event.kind == EventKind::kHelloTx;
    saw_recompute =
        saw_recompute || event.kind == EventKind::kTopologyRecompute;
    EXPECT_LT(event.node, cfg.node_count);
  }
  EXPECT_TRUE(saw_hello);
  EXPECT_TRUE(saw_recompute);
}

// --- profiling -----------------------------------------------------------

TEST(Profiling, RecordsEventLoopAndCategories) {
  runner::ScenarioConfig cfg;
  cfg.node_count = 10;
  cfg.duration = 4.0;
  cfg.warmup = 1.0;
  cfg.seed = 11;

  RunObservation observation;
  observation.profile_on = true;
  (void)runner::run_scenario(cfg, &observation);
  EXPECT_EQ(observation.profiler.runs(), 1u);
  EXPECT_GT(observation.profiler.events(), 0u);
  EXPECT_GT(observation.profiler.events_per_second(), 0.0);
  EXPECT_GT(observation.profiler.calls(Category::kSetup), 0u);
  EXPECT_GT(observation.profiler.calls(Category::kBeaconing), 0u);
}

// --- sweep hooks ---------------------------------------------------------

runner::ScenarioConfig small_config() {
  runner::ScenarioConfig cfg;
  cfg.node_count = 15;
  cfg.duration = 3.0;
  cfg.warmup = 1.0;
  cfg.seed = 5;
  return cfg;
}

TEST(SweepHooks, ProgressReportsEveryReplication) {
  const std::vector<runner::ScenarioConfig> configs{small_config(),
                                                    small_config()};
  constexpr std::size_t kRepeats = 2;
  util::ThreadPool pool(3);

  std::vector<runner::SweepProgress> seen;
  runner::SweepHooks hooks;
  hooks.on_progress = [&seen](const runner::SweepProgress& progress) {
    seen.push_back(progress);
  };
  const auto raw = runner::run_batch_raw(configs, kRepeats, pool, hooks);
  ASSERT_EQ(raw.size(), configs.size() * kRepeats);

  ASSERT_EQ(seen.size(), configs.size() * kRepeats);
  std::vector<bool> reported(seen.size() + 1, false);
  for (const runner::SweepProgress& progress : seen) {
    EXPECT_EQ(progress.total, seen.size());
    ASSERT_GE(progress.completed, 1u);
    ASSERT_LE(progress.completed, seen.size());
    EXPECT_FALSE(reported[progress.completed]) << "duplicate progress value";
    reported[progress.completed] = true;
    EXPECT_GE(progress.elapsed_seconds, 0.0);
    EXPECT_GE(progress.eta_seconds, 0.0);
  }
}

TEST(SweepHooks, ObservationSlotsFollowRawLayout) {
  const std::vector<runner::ScenarioConfig> configs{small_config()};
  constexpr std::size_t kRepeats = 3;
  util::ThreadPool pool(2);

  std::vector<RunObservation> observations;
  runner::SweepHooks hooks;
  hooks.observations = &observations;
  hooks.trace = true;
  hooks.profile = true;
  const auto raw = runner::run_batch_raw(configs, kRepeats, pool, hooks);
  ASSERT_EQ(raw.size(), kRepeats);
  ASSERT_EQ(observations.size(), kRepeats);
  for (const RunObservation& observation : observations) {
    EXPECT_GT(observation.counters.total(Counter::kHelloTx), 0u);
    EXPECT_FALSE(observation.trace.empty());
    EXPECT_EQ(observation.profiler.runs(), 1u);
  }
  // Different seeds per replication: slots must differ somewhere.
  EXPECT_NE(observations[0].counters.total(Counter::kHelloRx),
            0u);
}

}  // namespace
}  // namespace mstc::obs
