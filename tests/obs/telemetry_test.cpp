// Campaign telemetry units: resource ledgers and their sweep-level
// aggregation, the flight-recorder ring, post-mortem dumps, and the
// streaming metrics exporter. Complements observability_test.cpp (PR 2
// surfaces) and the determinism suite's byte-identity checks
// (Determinism.LedgerAndExporterOnDoesNotChangeResults).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics_export.hpp"
#include "obs/probe.hpp"
#include "runner/sweep.hpp"
#include "util/thread_pool.hpp"

namespace mstc::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Ledger, PercentileUsesNearestRank) {
  const std::vector<double> samples{5.0, 1.0, 4.0, 2.0, 3.0};
  // Nearest rank over n=5: p50 -> ceil(2.5) = 3rd smallest, p95 ->
  // ceil(4.75) = 5th, p20 -> 1st, p0 clamps to the minimum.
  EXPECT_DOUBLE_EQ(percentile(samples, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 95.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 20.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

RunLedger ledger_with_total_seconds(double seconds) {
  RunLedger ledger;
  ledger.total_wall_ns = static_cast<std::uint64_t>(seconds * 1e9);
  ledger.captured = true;
  return ledger;
}

TEST(Ledger, SummaryStatsOnKnownInputs) {
  LedgerSummary summary;
  // 20 samples 1..20 s: mean 10.5, p50 = 10th smallest = 10, p95 = 19th
  // smallest = 19 (nearest rank), max 20.
  for (int s = 20; s >= 1; --s) {
    summary.add(ledger_with_total_seconds(static_cast<double>(s)));
  }
  ASSERT_EQ(summary.count(), 20u);
  const LedgerStat stat = summary.stat(LedgerField::kTotalSeconds);
  EXPECT_DOUBLE_EQ(stat.mean, 10.5);
  EXPECT_DOUBLE_EQ(stat.p50, 10.0);
  EXPECT_DOUBLE_EQ(stat.p95, 19.0);
  EXPECT_DOUBLE_EQ(stat.max, 20.0);
  EXPECT_EQ(stat.count, 20u);
}

TEST(Ledger, SummaryIgnoresUncapturedAndMerges) {
  LedgerSummary left;
  left.add(RunLedger{});  // never captured: must not contribute a sample
  EXPECT_TRUE(left.empty());
  left.add(ledger_with_total_seconds(1.0));

  LedgerSummary right;
  right.add(ledger_with_total_seconds(3.0));
  left.merge(right);
  ASSERT_EQ(left.count(), 2u);
  EXPECT_DOUBLE_EQ(left.stat(LedgerField::kTotalSeconds).mean, 2.0);
}

TEST(Ledger, CaptureDerivesFieldsFromObservation) {
  RunObservation observation;
  observation.profiler.add(Category::kSetup, 2'000'000'000u);
  observation.profiler.add(Category::kTraceGen, 500'000'000u);
  observation.profiler.add(Category::kSnapshot, 250'000'000u);
  observation.profiler.add_run(4'000'000'000u, 1000);
  observation.counters.add(Counter::kSimEventsScheduled, 1234);
  observation.counters.add(Counter::kTopologyRecomputes, 25);
  observation.counters.add(Counter::kTopologyRecomputeSkips, 75);
  observation.counters.add(Counter::kTraceCacheHits, 1);
  observation.counters.add(Counter::kTraceCacheMisses, 3);
  observation.counters.add(Counter::kMediumCandidates, 200);
  observation.counters.add(Counter::kMediumCandidatesAccepted, 50);

  RunLedger ledger;
  ledger.capture(observation, /*wall_ns=*/8'000'000'000u,
                 /*peak_rss=*/42u << 20, /*allocations_before=*/0);
  ASSERT_TRUE(ledger.captured);
  EXPECT_DOUBLE_EQ(ledger.value(LedgerField::kTotalSeconds), 8.0);
  EXPECT_DOUBLE_EQ(ledger.value(LedgerField::kSetupSeconds), 2.0);
  EXPECT_DOUBLE_EQ(ledger.value(LedgerField::kTraceGenSeconds), 0.5);
  EXPECT_DOUBLE_EQ(ledger.value(LedgerField::kSimSeconds), 4.0);
  EXPECT_DOUBLE_EQ(ledger.value(LedgerField::kSnapshotSeconds), 0.25);
  EXPECT_EQ(ledger.events, 1234u);
  EXPECT_EQ(ledger.peak_rss_bytes, 42u << 20);
  EXPECT_DOUBLE_EQ(ledger.recompute_hit_rate, 0.75);
  EXPECT_DOUBLE_EQ(ledger.trace_cache_hit_rate, 0.25);
  EXPECT_DOUBLE_EQ(ledger.grid_hit_rate, 0.25);
}

TEST(Ledger, AllocationHookFeedsCaptureDeltas) {
  static std::uint64_t fake_allocations = 0;
  set_allocation_counter(+[] { return fake_allocations; });
  fake_allocations = 100;
  const std::uint64_t before = allocation_count();
  fake_allocations = 350;
  RunLedger ledger;
  ledger.capture(RunObservation{}, 0, 0, before);
  set_allocation_counter(nullptr);
  EXPECT_EQ(ledger.allocations, 250u);
  EXPECT_EQ(allocation_count(), 0u) << "hook must reset to the 0 default";
}

TEST(Ledger, FieldNamesAreStable) {
  // Exported names are part of the JSONL / Prometheus schema; pin them.
  EXPECT_STREQ(ledger_field_name(LedgerField::kTotalSeconds),
               "total_seconds");
  EXPECT_STREQ(ledger_field_name(LedgerField::kPeakRssBytes),
               "peak_rss_bytes");
  EXPECT_STREQ(ledger_field_name(LedgerField::kGridHitRate),
               "grid_hit_rate");
  for (std::size_t f = 0; f < kLedgerFieldCount; ++f) {
    EXPECT_STRNE(ledger_field_name(static_cast<LedgerField>(f)), "unknown");
  }
}

TraceEvent event_at(double time) {
  TraceEvent event;
  event.time = time;
  event.kind = EventKind::kHelloTx;
  return event;
}

TEST(FlightRecorder, KeepsEverythingBeforeWrap) {
  FlightRecorder flight;
  flight.set_capacity(4);
  flight.record(event_at(1.0));
  flight.record(event_at(2.0));
  EXPECT_EQ(flight.size(), 2u);
  EXPECT_EQ(flight.total_recorded(), 2u);
  std::vector<TraceEvent> out;
  flight.snapshot(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].time, 1.0);
  EXPECT_DOUBLE_EQ(out[1].time, 2.0);
}

TEST(FlightRecorder, WrapKeepsNewestInOldestFirstOrder) {
  FlightRecorder flight;
  flight.set_capacity(4);
  for (int i = 1; i <= 10; ++i) flight.record(event_at(i));
  EXPECT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.total_recorded(), 10u);
  std::vector<TraceEvent> out;
  flight.snapshot(out);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(out[i].time, 7.0 + static_cast<double>(i));
  }
}

TEST(FlightRecorder, ZeroCapacityRecordsNothing) {
  FlightRecorder flight;
  flight.record(event_at(1.0));  // capacity never set: must be a no-op
  flight.set_capacity(0);
  flight.record(event_at(2.0));
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_EQ(flight.total_recorded(), 0u);
}

TEST(FlightRecorder, ProbeRoutesEventsByFlags) {
  RunObservation observation;
  observation.flight_on = true;
  observation.flight.set_capacity(8);
  const Probe probe(&observation);
  probe.trace(EventKind::kHelloTx, 1.0, 7);
  EXPECT_EQ(observation.flight.total_recorded(), 1u);
  EXPECT_TRUE(observation.trace.empty())
      << "flight recording must not feed the full trace sink";

  observation.trace_on = true;
  probe.trace(EventKind::kHelloRx, 2.0, 8);
  EXPECT_EQ(observation.flight.total_recorded(), 2u);
  EXPECT_EQ(observation.trace.size(), 1u);
}

TEST(PostMortem, WritesOneJsonLinePerIncident) {
  const std::string path = testing::TempDir() + "postmortem.jsonl";
  PostMortemWriter writer;
  ASSERT_TRUE(writer.open(path));

  RunObservation observation;
  observation.flight_on = true;
  observation.flight.set_capacity(2);
  for (int i = 1; i <= 3; ++i) {
    observation.flight.record(event_at(static_cast<double>(i)));
  }
  observation.counters.add(Counter::kHelloTx, 9);
  observation.ledger = ledger_with_total_seconds(12.0);

  PostMortem incident;
  incident.config_index = 2;
  incident.replication = 1;
  incident.seed = 777;
  incident.reason = "soft_deadline_exceeded";
  incident.detail = "replication took 12.0s against a 5.0s soft deadline";
  incident.wall_seconds = 12.0;
  incident.soft_deadline_seconds = 5.0;
  incident.config_summary = "protocol=RNG nodes=100";
  incident.ledger = &observation.ledger;
  incident.counters = &observation.counters;
  incident.flight = &observation.flight;
  writer.write(incident);
  EXPECT_EQ(writer.incidents(), 1u);
  writer.close();

  const std::string content = slurp(path);
  EXPECT_NE(content.find("\"config_index\":2"), std::string::npos);
  EXPECT_NE(content.find("\"seed\":777"), std::string::npos);
  EXPECT_NE(content.find("\"reason\":\"soft_deadline_exceeded\""),
            std::string::npos);
  EXPECT_NE(content.find("\"config\":\"protocol=RNG nodes=100\""),
            std::string::npos);
  EXPECT_NE(content.find("\"total_seconds\":12"), std::string::npos);
  EXPECT_NE(content.find("\"hello_tx\":9"), std::string::npos);
  // Ring dumped oldest-to-newest, wrapped: events at t=2 and t=3 survive.
  EXPECT_NE(content.find("\"flight_total_recorded\":3"), std::string::npos);
  EXPECT_EQ(content.find("\"t\":1,"), std::string::npos);
  EXPECT_LT(content.find("\"t\":2,"), content.find("\"t\":3,"));
  // Exactly one line, ending in a newline.
  ASSERT_FALSE(content.empty());
  EXPECT_EQ(content.back(), '\n');
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 1);
}

RunObservation observation_with_events(std::uint64_t events) {
  RunObservation observation;
  observation.counters.add(Counter::kSimEventsScheduled, events);
  observation.profiler.add_run(events * 1000, events);
  observation.ledger.capture(observation, events * 1000, 0, 0);
  return observation;
}

TEST(MetricsExporter, StreamsJsonlAndPrometheus) {
  const std::string jsonl_path = testing::TempDir() + "metrics.jsonl";
  const std::string prom_path = testing::TempDir() + "metrics.prom";
  MetricsExporter exporter;
  MetricsExporter::Options options;
  options.jsonl_path = jsonl_path;
  options.prom_path = prom_path;
  options.job = "telemetry_test";
  ASSERT_TRUE(exporter.open(options));

  exporter.record(observation_with_events(100));
  exporter.record(observation_with_events(300));
  EXPECT_EQ(exporter.completed(), 2u);
  exporter.close();

  const std::string jsonl = slurp(jsonl_path);
  // flush_every defaults to 1: one snapshot per record, plus the final
  // close() snapshot.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
  EXPECT_NE(jsonl.find("\"type\":\"metrics\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"job\":\"telemetry_test\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"completed\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"sim_events_scheduled\":400"), std::string::npos);
  EXPECT_NE(jsonl.find("\"total_seconds\":{\"mean\":"), std::string::npos);

  const std::string prom = slurp(prom_path);
  EXPECT_NE(
      prom.find("mstc_replications_completed{job=\"telemetry_test\"} 2"),
      std::string::npos);
  EXPECT_NE(
      prom.find("mstc_sim_events_scheduled_total{job=\"telemetry_test\"} "
                "400"),
      std::string::npos);
  EXPECT_NE(prom.find("mstc_ledger_events{job=\"telemetry_test\","
                      "stat=\"p50\"} 100"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE mstc_hello_tx_total counter"),
            std::string::npos);
}

TEST(MetricsExporter, FlushCadenceBatchesSnapshots) {
  const std::string jsonl_path = testing::TempDir() + "metrics_cadence.jsonl";
  MetricsExporter exporter;
  MetricsExporter::Options options;
  options.jsonl_path = jsonl_path;
  options.flush_every = 3;
  ASSERT_TRUE(exporter.open(options));
  for (int i = 0; i < 7; ++i) exporter.record(observation_with_events(1));
  exporter.close();
  // Snapshots after records 3 and 6, plus the final close() snapshot.
  const std::string jsonl = slurp(jsonl_path);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
}

TEST(SweepTelemetry, LedgerWatchdogAndExporterRideTheSweep) {
  runner::ScenarioConfig cfg;
  cfg.node_count = 30;
  cfg.duration = 2.0;
  cfg.warmup = 0.5;
  cfg.seed = 4242;
  constexpr std::size_t kRepeats = 3;

  const std::string postmortem_path =
      testing::TempDir() + "sweep_postmortem.jsonl";
  PostMortemWriter postmortem;
  ASSERT_TRUE(postmortem.open(postmortem_path));
  MetricsExporter exporter;
  MetricsExporter::Options options;
  options.jsonl_path = testing::TempDir() + "sweep_metrics.jsonl";
  ASSERT_TRUE(exporter.open(options));

  std::vector<RunObservation> observations;
  runner::SweepHooks hooks;
  hooks.observations = &observations;
  hooks.ledger = true;
  hooks.flight = true;
  hooks.flight_capacity = 16;
  hooks.exporter = &exporter;
  hooks.postmortem = &postmortem;
  // Impossible soft deadline: every replication must be flagged, proving
  // the watchdog fires and dumps a complete diagnosis.
  hooks.soft_deadline_seconds = 1e-9;

  util::ThreadPool pool(2);
  const auto results = runner::run_batch_raw({cfg}, kRepeats, pool, hooks);
  exporter.close();

  ASSERT_EQ(results.size(), kRepeats);
  ASSERT_EQ(observations.size(), kRepeats);
  LedgerSummary summary;
  for (const RunObservation& observation : observations) {
    EXPECT_TRUE(observation.ledger.captured);
    EXPECT_GT(observation.ledger.events, 0u);
    EXPECT_GT(observation.ledger.total_wall_ns, 0u);
    EXPECT_GT(observation.ledger.peak_rss_bytes, 0u);
    EXPECT_GT(observation.flight.total_recorded(), 0u);
    summary.add(observation.ledger);
  }
  EXPECT_EQ(summary.count(), kRepeats);
  EXPECT_GT(summary.stat(LedgerField::kEvents).mean, 0.0);
  EXPECT_EQ(exporter.completed(), kRepeats);
  EXPECT_EQ(postmortem.incidents(), kRepeats);
  postmortem.close();
  const std::string dumped = slurp(postmortem_path);
  EXPECT_NE(dumped.find("\"reason\":\"soft_deadline_exceeded\""),
            std::string::npos);
  EXPECT_NE(dumped.find("\"flight\":["), std::string::npos);
  EXPECT_NE(dumped.find("protocol=RNG"), std::string::npos);
}

TEST(SweepTelemetry, EtaIsUnknownUntilMeasurable) {
  // Satellite regression test for the bogus-ETA fix: the very first
  // progress callback must either flag eta_known or report a finite,
  // non-negative ETA — and SweepProgress's default state must read as
  // "unknown" so consumers can't print a garbage estimate.
  const runner::SweepProgress defaults;
  EXPECT_FALSE(defaults.eta_known);

  runner::ScenarioConfig cfg;
  cfg.node_count = 20;
  cfg.duration = 1.0;
  cfg.warmup = 0.2;
  cfg.seed = 99;
  runner::SweepHooks hooks;
  std::size_t callbacks = 0;
  hooks.on_progress = [&](const runner::SweepProgress& progress) {
    ++callbacks;
    EXPECT_GT(progress.completed, 0u);
    if (progress.eta_known) {
      EXPECT_GE(progress.eta_seconds, 0.0);
      EXPECT_TRUE(std::isfinite(progress.eta_seconds));
    } else {
      EXPECT_EQ(progress.eta_seconds, 0.0);
    }
  };
  util::ThreadPool pool(2);
  (void)runner::run_batch_raw({cfg}, 2, pool, hooks);
  EXPECT_EQ(callbacks, 2u);
}

}  // namespace
}  // namespace mstc::obs
