#include "broadcast/cds.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "topology/builder.hpp"
#include "util/prng.hpp"

namespace mstc::broadcast {
namespace {

using graph::Graph;
using graph::NodeId;

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  return g;
}

TEST(WuLiMarking, PathMarksInteriorNodes) {
  const auto marked = wu_li_marking(path_graph(5));
  EXPECT_EQ(marked, (std::vector<bool>{false, true, true, true, false}));
}

TEST(WuLiMarking, CliqueMarksNobody) {
  Graph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v);
  }
  for (bool m : wu_li_marking(g)) EXPECT_FALSE(m);
}

TEST(WuLiMarking, StarMarksOnlyCenter) {
  Graph g(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  const auto marked = wu_li_marking(g);
  EXPECT_TRUE(marked[0]);
  for (NodeId leaf = 1; leaf < 5; ++leaf) EXPECT_FALSE(marked[leaf]);
}

TEST(Prune, Rule1RemovesCoveredNode) {
  // Nodes 0 and 1 adjacent with N[0] ⊆ N[1]: triangle 0-1-2 plus extra
  // pendant 3 on node 1. Marking marks 1 (neighbors 0/2 vs 3 not
  // adjacent)... 0's neighbors {1,2} are adjacent -> 0 unmarked anyway;
  // craft instead: square with diagonal.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(1, 3);
  // Marking: 0 has neighbors 1,3 adjacent -> unmarked. 2 same. 1: 0 and 2
  // non-adjacent -> marked; 3 likewise.
  auto marked = wu_li_marking(g);
  EXPECT_EQ(marked, (std::vector<bool>{false, true, false, true}));
  // N[1] = {0,1,2,3} = N[3]: rule 1 unmarks 1 (covered by higher-id 3).
  const auto pruned = prune(g, marked);
  EXPECT_EQ(pruned, (std::vector<bool>{false, false, false, true}));
  EXPECT_TRUE(is_connected_dominating_set(g, pruned));
}

TEST(IsConnectedDominatingSet, DetectsViolations) {
  const Graph g = path_graph(4);
  EXPECT_TRUE(is_connected_dominating_set(g, {false, true, true, false}));
  // Not dominating: node 3 has no member neighbor.
  EXPECT_FALSE(is_connected_dominating_set(g, {true, true, false, false}));
  // Dominating but disconnected members: {0? no..} use {true,false,false,
  // true}: node 1 dominated by 0, node 2 by 3, but members 0,3 not
  // connected through members.
  EXPECT_FALSE(is_connected_dominating_set(g, {true, false, false, true}));
}

TEST(ConnectedDominatingSet, RandomGeometricGraphsProperty) {
  util::Xoshiro256 rng(0xCD5);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<geom::Vec2> positions;
    const std::size_t n = 40 + rng.uniform_below(60);
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
    }
    const Graph g = topology::original_graph(positions, 250.0);
    if (!graph::is_connected(g)) continue;
    const auto cds = connected_dominating_set(g);
    EXPECT_TRUE(is_connected_dominating_set(g, cds)) << "trial " << trial;
    // And it's genuinely smaller than "everyone forwards".
    const std::size_t members =
        static_cast<std::size_t>(std::count(cds.begin(), cds.end(), true));
    EXPECT_LT(members, n) << "trial " << trial;
  }
}

TEST(BroadcastOverCds, FullCoverageWithFewerTransmissions) {
  util::Xoshiro256 rng(0xB0);
  std::vector<geom::Vec2> positions;
  for (int i = 0; i < 80; ++i) {
    positions.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
  }
  const Graph g = topology::original_graph(positions, 250.0);
  if (!graph::is_connected(g)) GTEST_SKIP() << "unlucky placement";
  const auto cds = connected_dominating_set(g);
  const std::vector<bool> everyone(g.node_count(), true);
  for (NodeId source : {NodeId{0}, NodeId{17}, NodeId{55}}) {
    EXPECT_DOUBLE_EQ(broadcast_coverage(g, cds, source), 1.0);
    EXPECT_LT(forward_count(g, cds, source),
              forward_count(g, everyone, source));
  }
}

TEST(ForwardCount, SourceAlwaysTransmits) {
  const Graph g = path_graph(3);
  // Only node 1 is a member; source 0 transmits, then 1, then 2 receives.
  EXPECT_EQ(forward_count(g, {false, true, false}, 0), 2u);
  EXPECT_DOUBLE_EQ(broadcast_coverage(g, {false, true, false}, 0), 1.0);
  EXPECT_EQ(forward_count(g, {false, false, false}, 5), 0u) << "bad source";
}

}  // namespace
}  // namespace mstc::broadcast
