#include <gtest/gtest.h>

#include "metrics/aggregate.hpp"
#include "metrics/snapshot.hpp"

namespace mstc::metrics {
namespace {

using geom::Vec2;

TEST(MeasureSnapshot, EmptyNetwork) {
  const SnapshotStats stats = measure_snapshot({}, {});
  EXPECT_DOUBLE_EQ(stats.strict_connectivity, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_range, 0.0);
}

TEST(MeasureSnapshot, TwoMutualNodes) {
  const topology::DistanceCost cost;
  const topology::NoneProtocol none;
  core::ControllerConfig config;
  std::vector<core::NodeController> nodes;
  nodes.emplace_back(0, none, cost, config);
  nodes.emplace_back(1, none, cost, config);
  nodes[0].on_hello_receive({1, {{10, 0}, 1, 0.1}}, 0.1);
  nodes[1].on_hello_receive({0, {{0, 0}, 1, 0.1}}, 0.1);
  nodes[0].on_hello_send(0.5, {0, 0}, 1);
  nodes[1].on_hello_send(0.5, {10, 0}, 1);
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}};
  const auto stats = measure_snapshot(nodes, positions);
  EXPECT_DOUBLE_EQ(stats.strict_connectivity, 1.0);
  EXPECT_NEAR(stats.mean_range, 10.0, 1e-6);
  EXPECT_DOUBLE_EQ(stats.mean_logical_degree, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_physical_degree, 1.0);
}

TEST(MeasureSnapshot, PhysicalDegreeCountsNonLogicalNodes) {
  const topology::DistanceCost cost;
  const topology::KNeighProtocol nearest_one(1);
  core::ControllerConfig config;
  std::vector<core::NodeController> nodes;
  for (core::NodeId u = 0; u < 3; ++u) {
    nodes.emplace_back(u, nearest_one, cost, config);
  }
  const std::vector<Vec2> positions = {{0, 0}, {10, 0}, {12, 0}};
  for (core::NodeId u = 0; u < 3; ++u) {
    for (core::NodeId v = 0; v < 3; ++v) {
      if (u != v) nodes[u].on_hello_receive({v, {positions[v], 1, 0.1}}, 0.1);
    }
    nodes[u].on_hello_send(0.5, positions[u], 1);
  }
  const auto stats = measure_snapshot(nodes, positions);
  // Node 0 keeps only node 1 (nearest): its range 10 also covers nobody
  // else; node 1 keeps node 2 (range 2); node 2 keeps node 1.
  // Physical degrees: node 0 covers node 1 -> 1; node 1 covers node 2 -> 1;
  // node 2 covers node 1 -> 1.
  EXPECT_DOUBLE_EQ(stats.mean_physical_degree, 1.0);
  // Mutual logical links: only (1,2): degrees 0,1,1.
  EXPECT_NEAR(stats.mean_logical_degree, 2.0 / 3.0, 1e-12);
  // Components {0},{1,2}: ratio = 2*1 / (3*2) = 1/3.
  EXPECT_NEAR(stats.strict_connectivity, 1.0 / 3.0, 1e-12);
}

TEST(RunAggregatorTest, AggregatesAcrossRuns) {
  RunAggregator agg;
  agg.add({.delivery_ratio = 0.8,
           .strict_connectivity = 0.5,
           .mean_range = 100.0,
           .mean_logical_degree = 2.0,
           .mean_physical_degree = 3.0});
  agg.add({.delivery_ratio = 0.6,
           .strict_connectivity = 0.3,
           .mean_range = 120.0,
           .mean_logical_degree = 3.0,
           .mean_physical_degree = 5.0});
  EXPECT_EQ(agg.runs(), 2u);
  EXPECT_DOUBLE_EQ(agg.delivery().mean(), 0.7);
  EXPECT_DOUBLE_EQ(agg.strict().mean(), 0.4);
  EXPECT_DOUBLE_EQ(agg.range().mean(), 110.0);
  EXPECT_DOUBLE_EQ(agg.logical_degree().mean(), 2.5);
  EXPECT_DOUBLE_EQ(agg.physical_degree().mean(), 4.0);
  // CI is finite with two runs.
  EXPECT_TRUE(std::isfinite(agg.delivery().ci95().half_width));
}

}  // namespace
}  // namespace mstc::metrics
