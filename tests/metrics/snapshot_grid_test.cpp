// Differential suite for the grid-backed snapshot measurement (PR 5).
//
// measure_snapshot's fast path — SpatialGrid candidate sets, union-find
// connectivity, two-pointer mutual-logical merge — claims *byte* identity
// with the straightforward O(n^2) measurement, not approximate equality.
// These tests hold it to that: a verbatim reference implementation of the
// pre-optimization measurement (brute pair scan, materialized effective
// Graph, per-neighbor is_logical probe) is byte-compared against both the
// brute_force escape hatch and the grid path (grid_min_nodes = 0 forces
// the index even for small fleets) over randomized fleets, exact ==range
// boundaries, the physical-neighbor enhancement on and off, and the
// empty / singleton edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/effective.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "metrics/snapshot.hpp"
#include "topology/protocol.hpp"
#include "util/prng.hpp"

namespace mstc::metrics {
namespace {

using geom::Vec2;

// Exact IEEE-754 bit patterns: two stats are "byte-identical" iff these
// arrays compare equal. EXPECT_DOUBLE_EQ would hide one-ulp drift, which
// is exactly the failure mode a resorted candidate set would introduce.
std::array<std::uint64_t, 4> bits(const SnapshotStats& stats) {
  return {std::bit_cast<std::uint64_t>(stats.strict_connectivity),
          std::bit_cast<std::uint64_t>(stats.mean_range),
          std::bit_cast<std::uint64_t>(stats.mean_logical_degree),
          std::bit_cast<std::uint64_t>(stats.mean_physical_degree)};
}

// Verbatim pre-PR measurement: brute pair scans in ascending index order,
// connectivity through a materialized effective Graph, mutual-logical
// count through the per-neighbor is_logical probe. Any deviation the fast
// path introduces shows up against this, bit for bit.
SnapshotStats reference_snapshot(
    std::span<const core::NodeController> controllers,
    std::span<const geom::Vec2> positions) {
  const std::size_t n = controllers.size();
  SnapshotStats stats;
  if (n == 0) return stats;

  graph::Graph effective(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double d = geom::distance(positions[u], positions[v]);
      if (core::can_deliver(controllers[u], controllers[v], d) &&
          core::can_deliver(controllers[v], controllers[u], d)) {
        effective.add_edge(u, v, d);
      }
    }
  }
  stats.strict_connectivity = graph::pair_connectivity_ratio(effective);

  double range_total = 0.0;
  std::size_t logical_total = 0;
  std::size_t physical_total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    const double range = controllers[u].extended_range();
    range_total += range;
    const double range_sq = range * range;
    for (const core::NodeId v : controllers[u].logical_neighbors()) {
      if (controllers[v].is_logical(static_cast<core::NodeId>(u))) {
        ++logical_total;
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (v != u &&
          geom::distance_sq(positions[u], positions[v]) <= range_sq) {
        ++physical_total;
      }
    }
  }
  stats.mean_range = range_total / static_cast<double>(n);
  stats.mean_logical_degree =
      static_cast<double>(logical_total) / static_cast<double>(n);
  stats.mean_physical_degree =
      static_cast<double>(physical_total) / static_cast<double>(n);
  return stats;
}

struct Fleet {
  // Cost/protocol must outlive the controllers, which hold references.
  topology::ProtocolSuite suite;
  std::vector<core::NodeController> nodes;
  std::vector<Vec2> positions;
};

/// Uniform fleet in a side x side square with a full Hello exchange, so
/// every controller has selected against a complete local view.
Fleet make_fleet(std::size_t n, double side, std::uint64_t seed,
                 std::string_view protocol, bool physical_neighbors,
                 double normal_range = 250.0) {
  Fleet fleet;
  fleet.suite = topology::make_protocol(protocol);
  util::Xoshiro256 rng(seed);
  fleet.positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    fleet.positions.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  core::ControllerConfig config;
  config.normal_range = normal_range;
  config.accept_physical_neighbors = physical_neighbors;
  fleet.nodes.reserve(n);
  for (core::NodeId u = 0; u < n; ++u) {
    fleet.nodes.emplace_back(u, *fleet.suite.protocol, *fleet.suite.cost,
                             config);
  }
  for (core::NodeId u = 0; u < n; ++u) {
    for (core::NodeId v = 0; v < n; ++v) {
      const double d = geom::distance(fleet.positions[u], fleet.positions[v]);
      if (u != v && d <= normal_range) {
        fleet.nodes[u].on_hello_receive({v, {fleet.positions[v], 1, 0.1}},
                                        0.1);
      }
    }
  }
  for (core::NodeId u = 0; u < n; ++u) {
    fleet.nodes[u].on_hello_send(0.5, fleet.positions[u], 1);
  }
  return fleet;
}

/// Reference vs brute escape hatch vs forced grid, all byte-compared.
void expect_all_paths_identical(const Fleet& fleet) {
  const auto reference = bits(reference_snapshot(fleet.nodes, fleet.positions));

  SnapshotScratch brute_scratch;
  const auto brute = bits(measure_snapshot(fleet.nodes, fleet.positions,
                                           brute_scratch,
                                           {.brute_force = true}));
  ASSERT_EQ(brute, reference)
      << "brute-force fast path diverged from the reference measurement";

  SnapshotScratch grid_scratch;
  const auto grid = bits(measure_snapshot(
      fleet.nodes, fleet.positions, grid_scratch,
      {.brute_force = false, .grid_min_nodes = 0}));
  ASSERT_EQ(grid, reference)
      << "grid-backed path diverged from the reference measurement";

  // Scratch reuse must not leak state between snapshots: measuring again
  // through the same (already warm) scratch gives the same bytes.
  const auto grid_again = bits(measure_snapshot(
      fleet.nodes, fleet.positions, grid_scratch,
      {.brute_force = false, .grid_min_nodes = 0}));
  ASSERT_EQ(grid_again, reference) << "scratch reuse changed the result";
}

TEST(SnapshotGrid, RandomFleetsMatchReferenceByteForByte) {
  // Spread over protocols (symmetric and asymmetric selections), fleet
  // sizes straddling the grid_min_nodes default, and densities from sparse
  // (few grid candidates) to a single crowded cell.
  expect_all_paths_identical(make_fleet(40, 900.0, 1, "RNG", false));
  expect_all_paths_identical(make_fleet(120, 600.0, 2, "MST", false));
  expect_all_paths_identical(make_fleet(200, 1200.0, 3, "KNeigh", false));
  expect_all_paths_identical(make_fleet(60, 150.0, 4, "None", false));
  expect_all_paths_identical(make_fleet(75, 2500.0, 5, "SPT-2", false));
}

TEST(SnapshotGrid, PhysicalNeighborEnhancementOnAndOff) {
  // accept_physical_neighbors changes can_deliver's second clause, which
  // changes which candidate pairs become links — both settings must agree
  // with the reference.
  expect_all_paths_identical(make_fleet(90, 700.0, 6, "RNG", true));
  expect_all_paths_identical(make_fleet(90, 700.0, 6, "RNG", false));
  expect_all_paths_identical(make_fleet(160, 900.0, 7, "KNeigh", true));
}

TEST(SnapshotGrid, ExactRangeBoundaryAgrees) {
  // A node's extended range sits one relative pad (1e-9, controller.cpp)
  // above the distance to its farthest logical neighbor, so comparisons a
  // handful of ulps from ==range are the *common* case, not a corner: on
  // this line every node's range lands essentially on another node. The
  // padded grid query must keep every such boundary candidate the brute
  // scan would test — dropping one would flip a link and fail the byte
  // compare.
  Fleet fleet;
  fleet.suite = topology::make_protocol("None");
  core::ControllerConfig config;
  config.normal_range = 100.0;
  const std::size_t n = 8;
  for (core::NodeId u = 0; u < n; ++u) {
    fleet.positions.push_back({static_cast<double>(u) * 10.0, 0.0});
    fleet.nodes.emplace_back(u, *fleet.suite.protocol, *fleet.suite.cost,
                             config);
  }
  for (core::NodeId u = 0; u < n; ++u) {
    for (core::NodeId v = 0; v < n; ++v) {
      if (u != v) {
        fleet.nodes[u].on_hello_receive({v, {fleet.positions[v], 1, 0.1}},
                                        0.1);
      }
    }
    fleet.nodes[u].on_hello_send(0.5, fleet.positions[u], 1);
  }
  // Sanity: node 0's range reaches node 7 with only the relative pad to
  // spare — the rounding-critical regime for the r^2 comparison.
  ASSERT_GE(fleet.nodes[0].extended_range(), 70.0);
  ASSERT_LE(fleet.nodes[0].extended_range(), 70.0 * (1.0 + 1e-8));
  expect_all_paths_identical(fleet);
}

TEST(SnapshotGrid, EmptyAndSingletonFleets) {
  SnapshotScratch scratch;
  const SnapshotStats empty =
      measure_snapshot({}, {}, scratch, {.grid_min_nodes = 0});
  EXPECT_EQ(bits(empty), bits(SnapshotStats{}));

  const Fleet one = make_fleet(1, 100.0, 8, "RNG", false);
  const SnapshotStats single = measure_snapshot(
      one.nodes, one.positions, scratch, {.grid_min_nodes = 0});
  EXPECT_DOUBLE_EQ(single.strict_connectivity, 1.0);  // n < 2 convention
  EXPECT_DOUBLE_EQ(single.mean_range, 0.0);  // no logical neighbors
  EXPECT_DOUBLE_EQ(single.mean_logical_degree, 0.0);
  EXPECT_DOUBLE_EQ(single.mean_physical_degree, 0.0);
  expect_all_paths_identical(one);
}

TEST(SnapshotGrid, MutualMergeMatchesIsLogicalOnAsymmetricSelections) {
  // KNeigh keeps the k nearest regardless of reciprocity, so plenty of
  // one-directional logical edges exist: exactly the case where the
  // two-pointer merge could miscount if it confused directed with mutual.
  const Fleet fleet = make_fleet(130, 800.0, 9, "KNeigh", false);
  std::size_t asymmetric = 0;
  std::size_t mutual_reference = 0;
  for (const auto& node : fleet.nodes) {
    for (const core::NodeId v : node.logical_neighbors()) {
      if (fleet.nodes[v].is_logical(node.id())) {
        ++mutual_reference;
      } else {
        ++asymmetric;
      }
    }
  }
  ASSERT_GT(asymmetric, 0u) << "fleet has no asymmetric selections; "
                               "the test is not exercising the merge";
  SnapshotScratch scratch;
  const SnapshotStats stats = measure_snapshot(
      fleet.nodes, fleet.positions, scratch, {.grid_min_nodes = 0});
  EXPECT_EQ(std::bit_cast<std::uint64_t>(stats.mean_logical_degree),
            std::bit_cast<std::uint64_t>(
                static_cast<double>(mutual_reference) /
                static_cast<double>(fleet.nodes.size())));
}

TEST(SnapshotGrid, MutualMergeRequiresSortedLogicalNeighbors) {
  // The two-pointer merge in measure_snapshot is correct only because
  // logical_neighbors() is sorted ascending — a documented contract
  // (core/controller.hpp), re-pinned here because the merge would silently
  // undercount if a future protocol emitted unsorted selections.
  for (const char* protocol :
       {"RNG", "MST", "KNeigh", "SPT-2", "Yao", "None"}) {
    const Fleet fleet = make_fleet(80, 600.0, 10, protocol, false);
    for (const auto& node : fleet.nodes) {
      const auto& logical = node.logical_neighbors();
      EXPECT_TRUE(std::is_sorted(logical.begin(), logical.end()))
          << protocol << " emitted an unsorted selection for node "
          << node.id();
      EXPECT_EQ(std::adjacent_find(logical.begin(), logical.end()),
                logical.end())
          << protocol << " emitted a duplicate logical neighbor";
    }
  }
}

TEST(SnapshotGrid, LinksExaminedCounterReflectsPruning) {
  // The grid's headline saving is fewer exact link checks; the counter
  // must report n*(n-1)/2 under brute force and strictly less on a sparse
  // fleet under the grid.
  const Fleet fleet = make_fleet(150, 3000.0, 11, "RNG", false);
  const std::uint64_t all_pairs =
      static_cast<std::uint64_t>(fleet.nodes.size()) *
      (fleet.nodes.size() - 1) / 2;

  obs::RunObservation brute_obs;
  obs::Probe brute_probe(&brute_obs);
  SnapshotScratch scratch;
  const auto brute = bits(measure_snapshot(fleet.nodes, fleet.positions,
                                           scratch, {.brute_force = true},
                                           &brute_probe));
  EXPECT_EQ(brute_obs.counters.total(obs::Counter::kSnapshotLinksExamined),
            all_pairs);

  obs::RunObservation grid_obs;
  obs::Probe grid_probe(&grid_obs);
  const auto grid = bits(measure_snapshot(fleet.nodes, fleet.positions,
                                          scratch, {.grid_min_nodes = 0},
                                          &grid_probe));
  const std::uint64_t examined =
      grid_obs.counters.total(obs::Counter::kSnapshotLinksExamined);
  EXPECT_GT(examined, 0u);
  EXPECT_LT(examined, all_pairs)
      << "grid pruned nothing on a fleet 12x sparser than its ranges";
  EXPECT_EQ(grid, brute);
}

}  // namespace
}  // namespace mstc::metrics
