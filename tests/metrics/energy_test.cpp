#include "metrics/energy.hpp"

#include <gtest/gtest.h>

#include "topology/protocol.hpp"
#include "util/prng.hpp"

namespace mstc::metrics {
namespace {

TEST(TransmissionPower, PowerLawPlusOverhead) {
  const EnergyModel model{.alpha = 2.0, .tx_fixed_power = 1.0,
                          .amp_scale = 0.01, .rx_power = 0.5};
  EXPECT_DOUBLE_EQ(transmission_power(model, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(transmission_power(model, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(transmission_power(model, 20.0), 5.0);
}

TEST(TransmissionPower, AlphaFourGrowsFaster) {
  const EnergyModel two{.alpha = 2.0};
  const EnergyModel four{.alpha = 4.0};
  EXPECT_GT(transmission_power(four, 100.0), transmission_power(two, 100.0));
}

TEST(EstimateLifetime, EmptyTopologyIsNeutral) {
  const topology::BuiltTopology topo;
  const auto report = estimate_lifetime({}, topo, 250.0);
  EXPECT_DOUBLE_EQ(report.first_death_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_drain_ratio, 1.0);
}

TEST(EstimateLifetime, ShorterRangesExtendLifetime) {
  // A 2-node topology with 50 m ranges vs a 250 m normal range.
  topology::BuiltTopology topo;
  topo.logical_neighbors = {{1}, {0}};
  topo.range = {50.0, 50.0};
  const auto report = estimate_lifetime({}, topo, 250.0);
  EXPECT_GT(report.first_death_ratio, 1.0);
  EXPECT_LT(report.mean_drain_ratio, 1.0);
}

TEST(EstimateLifetime, NoControlIsExactlyNeutral) {
  topology::BuiltTopology topo;
  topo.logical_neighbors = {{1}, {0}};
  topo.range = {250.0, 250.0};
  const auto report = estimate_lifetime({}, topo, 250.0);
  EXPECT_NEAR(report.first_death_ratio, 1.0, 1e-9);
  EXPECT_NEAR(report.mean_drain_ratio, 1.0, 1e-9);
}

TEST(EstimateLifetime, RealTopologiesGainSeveralFold) {
  // On the paper's deployment, MST ranges (~80 m) vs 250 m should extend
  // the first-death lifetime substantially under alpha = 2 amplifier-
  // dominated budgets.
  util::Xoshiro256 rng(606);
  std::vector<geom::Vec2> positions;
  for (int i = 0; i < 100; ++i) {
    positions.push_back({rng.uniform(0.0, 900.0), rng.uniform(0.0, 900.0)});
  }
  const auto suite = topology::make_protocol("MST");
  const auto topo =
      topology::build_topology(positions, 250.0, *suite.protocol, *suite.cost);
  const EnergyModel amplifier_dominated{.alpha = 2.0,
                                        .tx_fixed_power = 0.1,
                                        .amp_scale = 1e-3,
                                        .rx_power = 0.05};
  const auto report =
      estimate_lifetime(amplifier_dominated, topo, 250.0);
  EXPECT_GT(report.first_death_ratio, 2.0);
  EXPECT_LT(report.mean_drain_ratio, 0.4);
}

}  // namespace
}  // namespace mstc::metrics
