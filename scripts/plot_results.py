#!/usr/bin/env python3
"""Plot the paper's figures from the bench CSV dumps.

Usage:
    MSTC_CSV_DIR=out ./build/bench/bench_fig6   # ... and the others
    python3 scripts/plot_results.py out plots/

Produces one PNG per figure, mirroring the paper's layout: connectivity
ratio vs average moving speed, one sub-plot per protocol where the paper
uses one (Figs. 7, 9, 10). Requires matplotlib.

Counter mode (see docs/OBSERVABILITY.md):
    mstc_sim --trace-jsonl run.jsonl ...
    python3 scripts/plot_results.py --counters run.jsonl plots/

reads a JSONL event trace and plots the cumulative event count of every
event kind against simulation time (all replications summed).
"""
import csv
import json
import os
import sys
from collections import defaultdict


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def mean_of(cell):
    """Parse '0.874 ±0.021' or plain numbers."""
    return float(cell.split("±")[0].strip())


def series_plot(ax, rows, x_key, y_key, group_key):
    groups = defaultdict(list)
    for row in rows:
        groups[row[group_key]].append(
            (float(row[x_key]), mean_of(row[y_key])))
    for label, points in groups.items():
        points.sort()
        ax.plot([p[0] for p in points], [p[1] for p in points],
                marker="o", label=str(label))
    ax.set_xlabel(x_key)
    ax.set_ylabel(y_key)
    ax.set_xscale("log")
    ax.set_ylim(0.0, 1.05)
    ax.legend(fontsize=7)


def plot_fig6(rows, out):
    import matplotlib.pyplot as plt
    fig, ax = plt.subplots(figsize=(5, 4))
    series_plot(ax, rows, "speed_mps", "connectivity", "protocol")
    ax.set_title("Fig. 6: baseline connectivity vs mobility")
    fig.tight_layout()
    fig.savefig(out)


def plot_per_protocol(rows, series_key, title, out):
    import matplotlib.pyplot as plt
    protocols = sorted({row["protocol"] for row in rows})
    fig, axes = plt.subplots(2, 2, figsize=(9, 7))
    for ax, protocol in zip(axes.flat, protocols):
        subset = [row for row in rows if row["protocol"] == protocol]
        series_plot(ax, subset, "speed_mps", "connectivity", series_key)
        ax.set_title(protocol)
    fig.suptitle(title)
    fig.tight_layout()
    fig.savefig(out)


def read_jsonl(path):
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def plot_counters(jsonl_path, out_dir):
    """Cumulative event count per kind vs sim-time, from a JSONL trace."""
    events = read_jsonl(jsonl_path)
    if not events:
        print(f"no events in {jsonl_path}")
        return
    by_kind = defaultdict(list)
    for event in events:
        by_kind[event["kind"]].append(event["t"])
    try:
        import matplotlib.pyplot as plt
    except ImportError:
        # Headless fallback: still useful as a quick trace summary.
        print(f"matplotlib not available; per-kind totals of {jsonl_path}:")
        for kind in sorted(by_kind):
            times = by_kind[kind]
            print(f"  {kind:24s} {len(times):8d}  "
                  f"t=[{min(times):.3f}, {max(times):.3f}]")
        return
    fig, ax = plt.subplots(figsize=(7, 5))
    for kind in sorted(by_kind):
        times = sorted(by_kind[kind])
        ax.step(times, range(1, len(times) + 1), where="post",
                label=f"{kind} ({len(times)})")
    ax.set_xlabel("sim-time (s)")
    ax.set_ylabel("cumulative events")
    ax.set_yscale("log")
    ax.set_title(os.path.basename(jsonl_path))
    ax.legend(fontsize=7)
    fig.tight_layout()
    os.makedirs(out_dir, exist_ok=True)
    target = os.path.join(out_dir, "counters.png")
    fig.savefig(target)
    print(f"wrote {target}")


def main():
    argv = sys.argv[1:]
    if argv and argv[0] == "--counters":
        if len(argv) < 2:
            print("usage: plot_results.py --counters TRACE.jsonl [out_dir]",
                  file=sys.stderr)
            sys.exit(2)
        plot_counters(argv[1], argv[2] if len(argv) > 2 else "plots")
        return
    csv_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "plots"
    os.makedirs(out_dir, exist_ok=True)
    jobs = [
        ("fig6.csv", lambda rows, out: plot_fig6(rows, out), "fig6.png"),
        ("fig7.csv",
         lambda rows, out: plot_per_protocol(
             rows, "buffer_m", "Fig. 7: buffer zones", out), "fig7.png"),
        ("fig9.csv",
         lambda rows, out: plot_per_protocol(
             rows, "view_sync", "Fig. 9: view synchronization", out),
         "fig9.png"),
        ("fig10.csv",
         lambda rows, out: plot_per_protocol(
             rows, "physical_neighbors", "Fig. 10: physical neighbors", out),
         "fig10.png"),
    ]
    for source, plot, target in jobs:
        path = os.path.join(csv_dir, source)
        if not os.path.exists(path):
            print(f"skip {source} (not found in {csv_dir})")
            continue
        plot(read_csv(path), os.path.join(out_dir, target))
        print(f"wrote {os.path.join(out_dir, target)}")


if __name__ == "__main__":
    main()
