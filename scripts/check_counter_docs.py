#!/usr/bin/env python3
"""Drift check: every observability identifier the code can emit must be
documented in docs/OBSERVABILITY.md.

Parses the stable snake_case names out of the name-mapping switch
statements (`return "...";`) in:

  src/obs/counters.cpp   counter_name() + hist_name()
  src/obs/ledger.cpp     ledger_field_name()

and requires each to appear in docs/OBSERVABILITY.md wrapped in backticks
(the catalogue-table convention). Registered as the `check_counter_docs`
ctest (label: lint), so adding a counter without documenting it fails CI.

Exit status: 0 when the catalogue is complete, 1 when names are missing,
2 when a source file cannot be parsed at all (layout drifted).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "OBSERVABILITY.md"
SOURCES = [
    REPO / "src" / "obs" / "counters.cpp",
    REPO / "src" / "obs" / "ledger.cpp",
]

RETURN_NAME_RE = re.compile(r'return\s+"([a-z0-9_]+)"\s*;')
# The fallback arm of every name-mapping switch, not a real identifier.
IGNORED = {"unknown"}


def emitted_names(source: Path) -> set[str]:
    names = set(RETURN_NAME_RE.findall(source.read_text(encoding="utf-8")))
    return names - IGNORED


def main() -> int:
    if not DOC.is_file():
        print(f"check_counter_docs: missing {DOC}", file=sys.stderr)
        return 2

    doc_text = DOC.read_text(encoding="utf-8")
    documented = set(re.findall(r"`([a-z0-9_]+)`", doc_text))

    failures: list[str] = []
    total = 0
    for source in SOURCES:
        if not source.is_file():
            print(f"check_counter_docs: missing {source}", file=sys.stderr)
            return 2
        names = emitted_names(source)
        if not names:
            print(f"check_counter_docs: no names parsed from {source} — "
                  "has the name-mapping layout changed?", file=sys.stderr)
            return 2
        total += len(names)
        for name in sorted(names - documented):
            failures.append(f"{source.relative_to(REPO)}: `{name}` is "
                            f"emitted but not documented in "
                            f"{DOC.relative_to(REPO)}")

    for failure in failures:
        print(failure)
    if failures:
        print(f"check_counter_docs: {len(failures)} undocumented name(s)",
              file=sys.stderr)
        return 1
    print(f"check_counter_docs: {total} names all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
