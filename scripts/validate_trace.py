#!/usr/bin/env python3
"""End-to-end validation of mstc_sim's observability output.

Runs the simulator with --trace / --trace-jsonl / --metrics-out into a
temporary directory and validates every artifact against the documented
schema (docs/OBSERVABILITY.md):

  * the Chrome trace is valid JSON in trace_event format (loadable by
    Perfetto / chrome://tracing): a traceEvents array whose instant events
    carry pid/tid/ts/name and whose processes are named replications,
  * the JSONL trace has one object per line with exactly the documented
    keys, per-run consecutive seq numbering and non-decreasing sim-time,
  * the manifest records the config, seed, counter totals and wall-clock
    profile, with hello counters matching the closed form of the scenario
    (static nodes, proactive rounds => hello_tx == rounds * nodes).

Usage: validate_trace.py /path/to/mstc-sim
Registered as ctest "mstc_trace_e2e".
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

EXPECTED_JSONL_KEYS = {"run", "seq", "t", "node", "kind", "value", "aux"}

# Scenario chosen so the Hello counters have a closed form: proactive mode
# fires synchronized rounds at t = 0..10 (11 rounds), static nodes, zero
# loss, and a transmission range exceeding the 900x900 arena diagonal
# (~1273 m) so every node hears every round.
NODES = 5
ROUNDS = 11
ARGS = [
    "--mode", "proactive", "--mobility", "static", "--nodes", str(NODES),
    "--duration", "10.5", "--hello-interval", "1", "--range", "1300",
    "--repeats", "2", "--seed", "7",
]


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_chrome(path: Path) -> None:
    with open(path) as handle:
        document = json.load(handle)  # must parse — Perfetto requires it
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("chrome trace: traceEvents missing or empty")
    process_names = 0
    instants = 0
    for event in events:
        if event.get("ph") == "M":
            if event.get("name") == "process_name":
                process_names += 1
            continue
        if event.get("ph") != "i":
            fail(f"chrome trace: unexpected phase {event.get('ph')!r}")
        instants += 1
        for key in ("pid", "tid", "ts", "name"):
            if key not in event:
                fail(f"chrome trace: instant event missing {key!r}: {event}")
        if event["ts"] < 0:
            fail("chrome trace: negative timestamp")
    if process_names < 2:
        fail("chrome trace: expected one process_name per replication")
    if instants == 0:
        fail("chrome trace: no instant events")
    print(f"  chrome trace ok: {instants} instants, "
          f"{process_names} named processes")


def check_jsonl(path: Path) -> None:
    per_run_seq: dict[int, int] = {}
    per_run_time: dict[int, float] = {}
    records = 0
    kinds = set()
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if set(record) != EXPECTED_JSONL_KEYS:
                fail(f"jsonl line {line_no}: keys {sorted(record)} != "
                     f"{sorted(EXPECTED_JSONL_KEYS)}")
            run = record["run"]
            expected_seq = per_run_seq.get(run, 0)
            if record["seq"] != expected_seq:
                fail(f"jsonl line {line_no}: run {run} seq {record['seq']}, "
                     f"expected {expected_seq} (per-run consecutive)")
            per_run_seq[run] = expected_seq + 1
            if record["t"] < per_run_time.get(run, 0.0):
                fail(f"jsonl line {line_no}: sim-time went backwards")
            per_run_time[run] = record["t"]
            if not (0 <= record["node"] < NODES):
                fail(f"jsonl line {line_no}: node {record['node']} "
                     f"out of range")
            kinds.add(record["kind"])
            records += 1
    if records == 0:
        fail("jsonl: no records")
    if len(per_run_seq) != 2:
        fail(f"jsonl: expected 2 runs, saw {sorted(per_run_seq)}")
    if "hello_tx" not in kinds:
        fail(f"jsonl: no hello_tx events (kinds: {sorted(kinds)})")
    print(f"  jsonl ok: {records} records, {len(per_run_seq)} runs, "
          f"{len(kinds)} kinds")


def check_manifest(path: Path) -> None:
    with open(path) as handle:
        manifest = json.load(handle)
    for key in ("tool", "version", "seed", "repeats", "config", "counters",
                "histograms", "wall"):
        if key not in manifest:
            fail(f"manifest: missing key {key!r}")
    if manifest["tool"] != "mstc_sim":
        fail(f"manifest: tool = {manifest['tool']!r}")
    counters = manifest["counters"]
    expected_tx = ROUNDS * NODES * manifest["repeats"]
    if counters.get("hello_tx") != expected_tx:
        fail(f"manifest: hello_tx = {counters.get('hello_tx')}, expected "
             f"{expected_tx} ({ROUNDS} rounds x {NODES} nodes x "
             f"{manifest['repeats']} repeats)")
    expected_rx = expected_tx * (NODES - 1)
    if counters.get("hello_rx") != expected_rx:
        fail(f"manifest: hello_rx = {counters.get('hello_rx')}, "
             f"expected {expected_rx}")
    wall = manifest["wall"]
    if wall.get("runs") != manifest["repeats"]:
        fail(f"manifest: wall.runs = {wall.get('runs')}")
    if not wall.get("events", 0) > 0:
        fail("manifest: wall.events not positive")
    print(f"  manifest ok: hello_tx={expected_tx} hello_rx={expected_rx} "
          f"exact")


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: validate_trace.py /path/to/mstc-sim", file=sys.stderr)
        return 2
    binary = Path(sys.argv[1])
    if not binary.is_file():
        fail(f"no such binary: {binary}")

    with tempfile.TemporaryDirectory(prefix="mstc_trace_") as raw:
        out = Path(raw)
        chrome = out / "run.trace.json"
        jsonl = out / "run.jsonl"
        manifest = out / "manifest.json"
        command = [str(binary), *ARGS,
                   "--trace", str(chrome),
                   "--trace-jsonl", str(jsonl),
                   "--metrics-out", str(manifest)]
        result = subprocess.run(command, capture_output=True, text=True,
                                check=False)
        if result.returncode != 0:
            fail(f"mstc_sim exited {result.returncode}:\n{result.stderr}")
        for artifact in (chrome, jsonl, manifest):
            if not artifact.is_file():
                fail(f"artifact not written: {artifact.name}")
        check_chrome(chrome)
        check_jsonl(jsonl)
        check_manifest(manifest)
    print("validate_trace: all artifacts conform to the documented schema")
    return 0


if __name__ == "__main__":
    sys.exit(main())
